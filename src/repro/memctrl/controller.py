"""Per-channel host memory controller.

Implements the paper's host memory controller configuration (Table II):
FR-FCFS scheduling, 32-entry read and write queues, open-page row policy and
write draining with high/low watermarks.  The controller issues at most one
DRAM command per cycle over the channel's command/address bus and exposes the
queue state the NDA-side next-rank predictor inspects (Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import SchedulerConfig
from repro.dram.commands import Command, CommandType, DramAddress, RequestSource
from repro.dram.device import DramSystem
from repro.memctrl.frfcfs import NO_EVENT, FrFcfsScheduler
from repro.memctrl.request import MemoryRequest, RequestQueue
from repro.utils.stats import Counter, WindowedStat


@dataclass
class _PendingCompletion:
    cycle: int
    request: MemoryRequest


#: Counter labels per issued command kind, precomputed once — the hot path
#: used to pay an f-string format per issued command.
_CMD_COUNTER_LABELS = {kind: f"cmd_{kind.name.lower()}" for kind in CommandType}


class ChannelController:
    """FR-FCFS memory controller for one channel."""

    def __init__(self, channel: int, dram: DramSystem,
                 config: Optional[SchedulerConfig] = None,
                 scheduler_factory: Optional[
                     Callable[[DramSystem, int], FrFcfsScheduler]] = None) -> None:
        self.channel = channel
        self.dram = dram
        self.config = config or SchedulerConfig()
        self.read_queue = RequestQueue(self.config.read_queue_entries)
        self.write_queue = RequestQueue(self.config.write_queue_entries)
        # ``scheduler_factory`` is the backend hook: the kernel backend
        # substitutes the batched vector scan (same FR-FCFS selection law;
        # see repro.kernel.scan) by constructing with ``(dram, channel)``.
        self.scheduler = (FrFcfsScheduler(dram) if scheduler_factory is None
                          else scheduler_factory(dram, channel))
        # Integer occupancy thresholds with semantics identical to the
        # float comparisons they replace (computed by evaluating the exact
        # original expression for every possible length).
        capacity = self.config.write_queue_entries
        high = self.config.write_drain_high_watermark
        low = self.config.write_drain_low_watermark
        self._drain_high_len = next(
            (k for k in range(capacity + 1) if k / capacity >= high),
            capacity + 1)
        self._drain_low_len = max(
            (k for k in range(capacity + 1) if k / capacity <= low),
            default=-1)
        self.counters = Counter()
        self.read_latency = WindowedStat()
        self._completions: List[_PendingCompletion] = []
        # Earliest pending completion cycle (NO_EVENT when none): lets the
        # per-cycle paths skip scanning the completion list.
        self._completions_min = NO_EVENT
        #: When set (by the system), pending completions are scheduled into
        #: the host unit's completion calendar instead of this controller's
        #: list: deliveries stop forcing controller wakes, and the host unit
        #: wakes at the outstanding-completion horizon.  Invoked as
        #: ``completion_sink(cycle, request, self)``.  ``None`` (standalone
        #: controller use) keeps the internal list.
        self.completion_sink: Optional[
            Callable[[int, MemoryRequest, "ChannelController"], None]] = None
        #: Pending completions handed to the sink and not yet delivered
        #: (keeps the ``outstanding`` introspection exact).
        self.inflight_completions = 0
        self._draining_writes = False
        self._last_issue_was_write = False
        #: (cycle, rank) of the most recent command issued on this channel;
        #: the concurrent-access scheduler uses it to gate NDA issue.
        self.last_issue_cycle: int = -1
        self.last_issue_rank: int = -1
        #: Cycle of the most recent tick, and the wake this controller last
        #: published to the engine's calendar — both used to elide redundant
        #: enqueue-time dirty notifications (see :meth:`enqueue`).
        self.last_tick_cycle: int = -1
        self.published_wake: int = NO_EVENT
        #: Lower bound on the next cycle a *queued request* could issue.
        #: Never late: set to "next cycle" on any enqueue or issue, and to
        #: the exact scan-derived horizon when a full FR-FCFS scan finds
        #: nothing issuable.  External DRAM activity (NDA commands, refresh)
        #: only pushes timing constraints later, so a stale hint can only be
        #: early — which costs a no-op wake, never a missed event.
        self._issue_hint: int = 0
        #: Set by the resident stepper: post-issue wake refinement (the
        #: exact ``_probe_issue`` scan in :meth:`wake_after_tick`) is
        #: skipped, because with a stepper bound the engine re-enters the
        #: fused window at the conservative ``now + 1`` wake and the core
        #: re-derives the horizon in C within the same window — one fused
        #: call instead of a ctypes probe plus a later window entry.
        self.lazy_wake_probe: bool = False
        # Memoized FR-FCFS scans, one slot per queue: (cycle, queue version,
        # channel DRAM version, choice, horizon, choice_at_horizon).  A scan
        # is a pure function of (queue contents+order, channel bank/timing
        # state, cycle); the versions cover every mutation path, so the
        # event engine's wake probe and the same cycle's tick share one
        # scan — and an empty probe's at-horizon lookahead lets the tick at
        # the horizon issue without re-scanning at all.
        self._scan_cache_read = (-1, -1, -1, None, 0, None)
        self._scan_cache_write = (-1, -1, -1, None, 0, None)
        #: Selective-wake notification: invoked when a request is accepted
        #: into a queue, so the engine re-polls this channel's unit (the
        #: issue hint just moved to "next cycle") instead of polling every
        #: channel every cycle.
        self.wake_listener: Optional[Callable[[], None]] = None
        #: Burst-issue settlement hook: invoked with a boundary cycle before
        #: this controller reads or mutates DRAM timing state (FR-FCFS
        #: scans, refresh/request issues), so lazily-planned NDA command
        #: bursts on this channel's ranks are applied up to (excluding) the
        #: boundary first.  ``None`` when bursting is disabled.
        self.burst_settler: Optional[Callable[[int], None]] = None
        #: Burst truncation hook: invoked with the mutation cycle whenever
        #: the read queue changes (enqueue or issue) — the next-rank write
        #: throttle reads the oldest queued read, so planned NDA write
        #: bursts on this channel must fall back to per-cycle decisions.
        self.read_queue_listener: Optional[Callable[[int], None]] = None

    # ------------------------------------------------------------------ #
    # Enqueue interface (used by the host model and the runtime)
    # ------------------------------------------------------------------ #

    def can_accept(self, is_write: bool) -> bool:
        queue = self.write_queue if is_write else self.read_queue
        return not queue.full

    def enqueue(self, request: MemoryRequest, now: int) -> bool:
        """Add a request; returns False (request rejected) when the queue is full."""
        if request.addr.channel != self.channel:
            raise ValueError(
                f"request for channel {request.addr.channel} sent to controller "
                f"{self.channel}"
            )
        queue = self.write_queue if request.is_write else self.read_queue
        if queue.full:
            self.counters.add("queue_full_rejects")
            return False
        request.arrival_cycle = now
        if request.is_read:
            # Read forwarding from a queued write to the same line.
            forward = self.write_queue.find_write_to(request.addr)
            if forward is not None:
                self.counters.add("read_forwards")
                request.complete(now)
                return True
        queue.push(request)
        self.counters.add("write_enqueued" if request.is_write else "read_enqueued")
        if request.is_read:
            listener = self.read_queue_listener
            if listener is not None:
                listener(now)
        # Settle the drain-mode hysteresis for the new queue state (see
        # _update_drain_mode: one evaluation per length state keeps the
        # selective engine's mode trajectory identical to per-cycle ticking).
        self._update_drain_mode()
        self._issue_hint = now + 1
        listener = self.wake_listener
        if listener is not None:
            # The dirty notification is redundant when this controller
            # already ticked this cycle (the engine's post-run refresh
            # re-probes with the new queue) or its published wake is due by
            # the hint cycle anyway — the wake contract stays never-late and
            # each elided dirty saves a full FR-FCFS re-probe.
            if self.last_tick_cycle != now and self.published_wake > now + 1:
                listener()
        return True

    # ------------------------------------------------------------------ #
    # Queries used by the NDA controllers (next-rank prediction)
    # ------------------------------------------------------------------ #

    def oldest_pending_read_rank(self) -> Optional[int]:
        """Rank targeted by the oldest queued read, if any (Section III-B)."""
        oldest = self.read_queue.oldest()
        if oldest is None:
            return None
        return oldest.addr.rank

    def pending_requests_for_rank(self, rank: int) -> int:
        return (self.read_queue.count_for_rank(rank)
                + self.write_queue.count_for_rank(rank))

    def pending_to_bank(self, rank: int, bank_group: int, bank: int) -> bool:
        """Whether either queue holds a request for the given bank (O(1))."""
        return (self.read_queue.has_bank(rank, bank_group, bank)
                or self.write_queue.has_bank(rank, bank_group, bank))

    @property
    def queued_reads(self) -> int:
        return len(self.read_queue)

    @property
    def queued_writes(self) -> int:
        return len(self.write_queue)

    # ------------------------------------------------------------------ #
    # Cycle advance
    # ------------------------------------------------------------------ #

    def tick(self, now: int) -> List[MemoryRequest]:
        """Advance one DRAM cycle; returns requests that completed this cycle."""
        self.last_tick_cycle = now
        settler = self.burst_settler
        if settler is not None:
            # Planned NDA commands strictly before ``now`` happened (in rank
            # slots that precede this tick); apply them before any scan or
            # issue reads the rank's timing state.
            settler(now)
        completed = self._collect_completions(now)
        if self._issue_refresh_if_due(now):
            return completed
        self._update_drain_mode()
        if self._issue_hint > now:
            # The hint is never late: no queued request can issue before it
            # (enqueues and issues reset it to "next cycle"; external DRAM
            # activity only pushes constraints later), so the FR-FCFS scan
            # would provably come up empty — skip it.  Keeping the possibly
            # conservative hint costs at most a future no-op scan.
            return completed
        request_cmd, horizon = self._pick(now)
        if request_cmd is not None:
            request, cmd = request_cmd
            self._issue_for_request(request, cmd, now)
        else:
            # Full scan found nothing issuable: the horizon is an exact
            # lower bound on the next request-issue opportunity.
            self._issue_hint = max(now + 1, horizon)
        return completed

    # -- internals -------------------------------------------------------- #

    def _collect_completions(self, now: int) -> List[MemoryRequest]:
        if now < self._completions_min:
            return []
        done = [p.request for p in self._completions if p.cycle <= now]
        if done:
            remaining = [p for p in self._completions if p.cycle > now]
            self._completions = remaining
            self._completions_min = (min(p.cycle for p in remaining)
                                     if remaining else NO_EVENT)
            for request in done:
                request.complete(now)
                if request.is_read:
                    self.read_latency.add(request.completed_cycle - request.arrival_cycle)
        return done

    def _add_completion(self, cycle: int, request: MemoryRequest) -> None:
        sink = self.completion_sink
        if sink is not None:
            self.inflight_completions += 1
            sink(cycle, request, self)
            return
        self._completions.append(_PendingCompletion(cycle, request))
        if cycle < self._completions_min:
            self._completions_min = cycle

    def _issue_refresh_if_due(self, now: int) -> bool:
        """Handle refresh for any rank of this channel that is due."""
        if not self.config.refresh_enabled:
            return False
        if now < self.dram.timing.channel_min_refresh_due(self.channel):
            return False
        for rank in range(self.dram.org.ranks_per_channel):
            if not self.dram.refresh_due(self.channel, rank, now):
                continue
            # All banks must be precharged before REF.
            for bank in self.dram.banks_of_rank(self.channel, rank):
                if bank.is_open():
                    addr = DramAddress(self.channel, rank, bank.bank_group,
                                       bank.bank, bank.open_row or 0, 0)
                    if self.dram.can_issue_at(CommandType.PRE, addr,
                                              RequestSource.HOST, now):
                        cmd = Command(CommandType.PRE, addr, RequestSource.HOST)
                        self.dram.issue_trusted(cmd, now)
                        self._note_issue(now, rank)
                        self.counters.add("refresh_precharges")
                        return True
                    return False  # wait for the precharge to become legal
            addr = DramAddress(self.channel, rank, 0, 0, 0, 0)
            if self.dram.can_issue_at(CommandType.REF, addr,
                                      RequestSource.HOST, now):
                cmd = Command(CommandType.REF, addr, RequestSource.HOST)
                self.dram.issue_trusted(cmd, now)
                self._note_issue(now, rank)
                self.counters.add("refreshes")
                return True
            return False
        return False

    def _update_drain_mode(self) -> None:
        """One step of the write-drain hysteresis for the current lengths.

        The legacy loop ran this every cycle; queue lengths only change on
        enqueue and issue, and one evaluation per length state reaches the
        same mode the per-cycle evaluation would (states with both the
        entry and exit condition true — an empty read queue with few
        writes — oscillate under per-cycle evaluation, but the pick and
        horizon are mode-insensitive there and every exit from such a
        state forces one deterministic value).  Evaluating at every
        mutation point (enqueue, request issue) plus tick time therefore
        keeps the selective-wake engine — which does not tick provably
        idle cycles — bit-exact with the cycle engine even though it
        evaluates the hysteresis far less often.
        """
        writes = len(self.write_queue)
        if not self._draining_writes:
            if (writes >= self._drain_high_len
                    or (writes and not self.read_queue)):
                self._draining_writes = True
                self.counters.add("drain_entries")
        else:
            if writes <= self._drain_low_len or not writes:
                self._draining_writes = False

    def _scan(self, queue: RequestQueue, now: int,
              ) -> Tuple[Optional[Tuple[MemoryRequest, Command]], int]:
        """Memoized FR-FCFS scan of one queue (see ``_scan_cache_*``)."""
        cache = (self._scan_cache_write if queue is self.write_queue
                 else self._scan_cache_read)
        dram_version = self.dram.channel_issue_version[self.channel]
        if cache[1] == queue.version and cache[2] == dram_version:
            if cache[0] == now:
                return cache[3], cache[4]
            if cache[3] is None and cache[0] < now:
                # An empty-handed scan stays valid until its horizon: with
                # queue and channel DRAM state unchanged, every request's
                # absolute earliest-issue cycle is unchanged, and all of
                # them lie at or beyond the horizon.
                if now < cache[4]:
                    return None, cache[4]
                # At the horizon itself the scan's lookahead already knows
                # the FR-FCFS winner (state unchanged by the version check).
                if now == cache[4] and cache[5] is not None:
                    return cache[5], NO_EVENT
        choice, horizon, future = self.scheduler._select_bucketed(queue, now)
        entry = (now, queue.version, dram_version, choice, horizon, future)
        if queue is self.write_queue:
            self._scan_cache_write = entry
        else:
            self._scan_cache_read = entry
        return choice, horizon

    def _pick(self, now: int,
              ) -> Tuple[Optional[Tuple[MemoryRequest, Command]], int]:
        primary, secondary = (
            (self.write_queue, self.read_queue) if self._draining_writes
            else (self.read_queue, self.write_queue)
        )
        choice, primary_horizon = self._scan(primary, now)
        if choice is not None:
            return choice, NO_EVENT
        # Serve the other queue opportunistically so the channel is not idle.
        choice, secondary_horizon = self._scan(secondary, now)
        return choice, min(primary_horizon, secondary_horizon)

    def _issue_for_request(self, request: MemoryRequest, cmd: Command,
                           now: int) -> None:
        if not request.outcome_recorded:
            self.dram.record_access_outcome(request.addr, request.is_write,
                                            is_nda=False)
            request.outcome_recorded = True
        # The command comes from this cycle's FR-FCFS scan (the scan cache
        # is version-guarded), so legality was just proven.
        self.dram.issue_trusted(cmd, now)
        self._note_issue(now, cmd.addr.rank)
        self.counters.add(_CMD_COUNTER_LABELS[cmd.kind])
        if cmd.kind is CommandType.RD:
            request.issued_cycle = now
            self.read_queue.remove(request)
            listener = self.read_queue_listener
            if listener is not None:
                listener(now)
            self._add_completion(now + self.dram.read_latency(), request)
            self._last_issue_was_write = False
            self._update_drain_mode()
        elif cmd.kind is CommandType.WR:
            request.issued_cycle = now
            self.write_queue.remove(request)
            # Writes are posted: the transaction is complete once the data
            # has been driven onto the bus.  A plain writeback has no
            # completion observer, so its completion cycle is stamped
            # eagerly instead of scheduling a controller wake for it;
            # requests with an on_complete hook (launch packets) keep the
            # timed delivery.
            if request.on_complete is None:
                request.complete(now + self.dram.write_latency())
            else:
                self._add_completion(now + self.dram.write_latency(), request)
            if not self._last_issue_was_write:
                self.counters.add("read_write_turnarounds")
            self._last_issue_was_write = True
            self._update_drain_mode()

    def _note_issue(self, now: int, rank: int) -> None:
        self.last_issue_cycle = now
        self.last_issue_rank = rank
        # An issue changes queue and DRAM state; be conservative and allow
        # another action next cycle.
        self._issue_hint = now + 1

    # ------------------------------------------------------------------ #
    # Event-engine interface
    # ------------------------------------------------------------------ #

    def next_event_cycle(self, now: int) -> int:
        """Earliest cycle >= ``now`` at which ``tick`` could do anything.

        Combines pending completion deliveries (exact), refresh due times
        (exact) and the queued-request issue hint (never late).  A stale
        hint (``<= now``, left over from the last issue or enqueue) is
        refreshed here with a side-effect-free FR-FCFS probe, so cycles on
        which nothing can issue are skipped instead of ticked.  Cycles
        strictly before the returned value are provably no-ops for this
        controller, so the event engine may skip them.
        """
        wake = self._completions_min
        if self.config.refresh_enabled:
            due = self.dram.timing.channel_min_refresh_due(self.channel)
            if due < wake:
                wake = due
        if self.read_queue or self.write_queue:
            hint = self._issue_hint
            if hint <= now < wake and not self.lazy_wake_probe:
                hint = self._probe_issue(now)
            if hint < wake:
                wake = hint
        wake = wake if wake > now else now
        self.published_wake = wake
        return wake

    def wake_after_tick(self, now: int) -> int:
        """Wake-up valid immediately after ``tick(now)``.

        Post-tick the issue hint is fresh except in one case: a tick that
        *issued* reset it to ``now + 1``, which is conservative — after an
        ACT nothing can issue for tRCD cycles, after a column command not
        before the CCD spacing.  That conservative hint used to cost one
        guaranteed no-op wake (tick + empty scan) per issued command, ~45%
        of all channel ticks on the NDA-dense fig14 point.  Here the hint
        is instead refined with the exact scan horizon for ``now + 1``
        (memoized; the scan replaces the one the no-op wake would have
        run), so the provably dead cycles are skipped outright.  Completion
        deliveries and refresh dues are exact O(1) terms as before.  (A
        refresh that is due but blocked on precharge legality clamps to
        ``now + 1``: the controller retries it every cycle, as the
        per-cycle loop did.)
        """
        wake = self._completions_min
        if self.config.refresh_enabled:
            due = self.dram.timing.channel_min_refresh_due(self.channel)
            if due < wake:
                wake = due
        if self.read_queue or self.write_queue:
            hint = self._issue_hint
            if (hint <= now + 1 and wake > now + 1
                    and not self.lazy_wake_probe):
                hint = self._probe_issue(now + 1)
            if hint < wake:
                wake = hint
        wake = wake if wake > now else now + 1
        self.published_wake = wake
        return wake

    def _probe_issue(self, now: int) -> int:
        """Pure scan: ``now`` if any queued request can issue, else the horizon.

        Mirrors the tick's FR-FCFS selection without issuing or counting;
        used only for wake-up computation.  The refreshed hint stays valid
        until the next enqueue or issue on this channel (both reset it).
        """
        settler = self.burst_settler
        if settler is not None:
            # A probe for cycle ``now`` models the scan that tick(now) would
            # run — which, in slot order, sees every NDA command issued on
            # cycles before ``now``.
            settler(now)
        choice, read_horizon = self._scan(self.read_queue, now)
        if choice is not None:
            return now
        choice, write_horizon = self._scan(self.write_queue, now)
        if choice is not None:
            return now
        self._issue_hint = max(now + 1, min(read_horizon, write_horizon))
        return self._issue_hint

    def reset_measurement(self) -> None:
        """Zero measurement counters at the warmup boundary."""
        self.counters.reset()
        self.read_latency = WindowedStat()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def outstanding(self) -> int:
        return (len(self.read_queue) + len(self.write_queue)
                + len(self._completions) + self.inflight_completions)

    def busy(self) -> bool:
        return self.outstanding > 0

    def stats(self) -> Dict[str, float]:
        data = dict(self.counters.as_dict())
        data["avg_read_latency"] = self.read_latency.mean
        return data
