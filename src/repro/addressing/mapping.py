"""Physical address to DRAM address mappings.

Memory controllers translate OS physical addresses into DRAM coordinates
(channel, rank, bank group, bank, row, column).  High-performance hosts use
XOR-hash functions that mix row bits into the channel/rank/bank selection so
that strided access patterns spread over banks (paper Section II, "Address
Mapping"; the concrete baseline is the Intel Skylake mapping reverse
engineered by Pessl et al.).

The mappings here are *linear over GF(2)*: every DRAM field bit is the XOR of
a fixed set of physical-address bits.  Linearity is what makes the Chopim
page-coloring layout work — the rank/channel of an address decomposes into a
frame-dependent part (the color) and an offset-dependent part, so two
operands placed in frames of equal color are rank-aligned at equal offsets
(Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DramOrgConfig
from repro.dram.commands import DramAddress


def _bit(value: int, position: int) -> int:
    return (value >> position) & 1


def _bits_needed(count: int) -> int:
    """Number of bits needed to index ``count`` items (count power of two)."""
    if count <= 0 or count & (count - 1):
        raise ValueError(f"count must be a positive power of two, got {count}")
    return count.bit_length() - 1


try:  # int.bit_count needs Python >= 3.10; CI still exercises 3.9.
    _POPCOUNT = int.bit_count
except AttributeError:  # pragma: no cover - exercised only on old Pythons
    def _POPCOUNT(value: int) -> int:
        return bin(value).count("1")


@dataclass(frozen=True)
class FieldSpec:
    """One DRAM-address field of an XOR-hashed mapping.

    Each output bit ``i`` of the field is computed as::

        out[i] = phys[home_lsb + i]  XOR  (XOR of phys[b] for b in partners[i])

    The *home* bits are where the field lives in the physical address; the
    *partners* are additional physical bits (typically row bits) XORed in to
    permute the field.  Because partners are always row bits (which map to the
    row field untouched), the mapping is invertible.

    Since the mapping is linear over GF(2), each output bit is the parity of
    ``phys`` under a fixed mask; the masks are precomputed at construction so
    :meth:`extract` is a handful of ``popcount & 1`` parities instead of
    nested bit loops.
    """

    name: str
    width: int
    home_lsb: int
    partners: Tuple[Tuple[int, ...], ...] = ()
    #: Per output bit: mask of all contributing physical bits (home XOR
    #: partners), and partners only.  Derived, not part of identity.
    bit_masks: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    hash_masks: Tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        bit_masks = []
        hash_masks = []
        for i in range(self.width):
            hash_mask = 0
            if i < len(self.partners):
                for p in self.partners[i]:
                    hash_mask ^= 1 << p
            hash_masks.append(hash_mask)
            bit_masks.append(hash_mask ^ (1 << (self.home_lsb + i)))
        object.__setattr__(self, "bit_masks", tuple(bit_masks))
        object.__setattr__(self, "hash_masks", tuple(hash_masks))

    def extract(self, phys: int) -> int:
        value = 0
        for i, mask in enumerate(self.bit_masks):
            if _POPCOUNT(phys & mask) & 1:
                value |= 1 << i
        return value

    def hash_part(self, phys: int) -> int:
        """Only the partner-XOR contribution (no home bits)."""
        value = 0
        for i, mask in enumerate(self.hash_masks):
            if _POPCOUNT(phys & mask) & 1:
                value |= 1 << i
        return value


class AddressMapping:
    """Base class for physical-to-DRAM address mappings."""

    def __init__(self, org: DramOrgConfig) -> None:
        self.org = org
        self.offset_bits = _bits_needed(org.cacheline_bytes)
        self.column_bits = _bits_needed(org.columns_per_row)
        self.channel_bits = _bits_needed(org.channels)
        self.rank_bits = _bits_needed(org.ranks_per_channel)
        self.bank_group_bits = _bits_needed(org.bank_groups)
        self.bank_bits = _bits_needed(org.banks_per_group)
        self.row_bits = _bits_needed(org.rows_per_bank)
        self.total_bits = (self.offset_bits + self.column_bits + self.channel_bits
                           + self.rank_bits + self.bank_group_bits + self.bank_bits
                           + self.row_bits)
        # Geometry for stamping dense rank/bank indices on decoded addresses
        # (the flat-array keys of the DRAM timing engine and device).
        self._ranks_per_channel = org.ranks_per_channel
        self._banks_per_group = org.banks_per_group
        self._banks_per_rank = org.banks_per_rank
        # Memoization: mappings are immutable after construction, so frame
        # colors (derived purely from to_dram) can be cached per frame base.
        self._frame_color_cache: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._num_colors_cache: Dict[int, int] = {}

    def stamp_indices(self, channel: int, rank: int, bank_group: int, bank: int,
                      row: int, column: int) -> DramAddress:
        """Build a :class:`DramAddress` with dense indices pre-stamped."""
        rank_index = channel * self._ranks_per_channel + rank
        bank_index = (rank_index * self._banks_per_rank
                      + bank_group * self._banks_per_group + bank)
        return DramAddress(channel, rank, bank_group, bank, row, column,
                           rank_index, bank_index)

    # -- interface ------------------------------------------------------- #

    def to_dram(self, phys: int) -> DramAddress:
        raise NotImplementedError

    def from_dram(self, addr: DramAddress) -> int:
        raise NotImplementedError

    # -- shared helpers --------------------------------------------------- #

    @property
    def capacity_bytes(self) -> int:
        return self.org.total_bytes

    def check_range(self, phys: int) -> None:
        if not 0 <= phys < self.capacity_bytes:
            raise ValueError(
                f"physical address {phys:#x} outside capacity {self.capacity_bytes:#x}"
            )

    def cacheline_of(self, phys: int) -> int:
        return phys >> self.offset_bits

    def frame_color(self, phys_or_pfn: int, page_bits: int = 21,
                    is_pfn: bool = False) -> Tuple[int, int]:
        """(channel, rank) contribution of the frame bits of an address.

        ``page_bits`` is the page size in bits (21 for 2 MiB huge pages).  Two
        frames with equal color place equal in-frame offsets in the same
        channel and rank — the property OS page coloring relies on
        (Section III-A).
        """
        phys = (phys_or_pfn << page_bits) if is_pfn else phys_or_pfn
        masked = (phys & ~((1 << page_bits) - 1)) % self.capacity_bytes
        cached = self._frame_color_cache.get((masked, page_bits))
        if cached is not None:
            return cached
        base = self.to_dram(masked)
        color = (base.channel, base.rank)
        self._frame_color_cache[(masked, page_bits)] = color
        return color

    def num_colors(self, page_bits: int = 21) -> int:
        """Number of distinct frame colors for the given page size (memoized)."""
        cached = self._num_colors_cache.get(page_bits)
        if cached is not None:
            return cached
        seen = set()
        frame = 1 << page_bits
        for pfn in range(min(self.capacity_bytes // frame, 4096)):
            seen.add(self.frame_color(pfn, page_bits, is_pfn=True))
        self._num_colors_cache[page_bits] = len(seen)
        return len(seen)

    def round_trip_ok(self, phys: int) -> bool:
        """Whether the mapping inverts at cache-line granularity.

        DRAM addresses identify cache lines; the byte offset within a line is
        not part of the DRAM coordinate, so the round trip compares the
        line-aligned address.
        """
        aligned = phys & ~(self.org.cacheline_bytes - 1)
        return self.from_dram(self.to_dram(phys)) == aligned


class XorFieldMapping(AddressMapping):
    """A mapping assembled from :class:`FieldSpec` entries.

    The physical address is carved, from LSB to MSB, into: cache-line offset,
    low column bits, channel, high column bits, bank group, bank, rank, row
    (the Skylake arrangement of Figure 4a).  Channel, bank group, bank and
    rank may be hashed with row bits.
    """

    def __init__(self, org: DramOrgConfig,
                 hash_partners: Optional[Dict[str, Sequence[Sequence[int]]]] = None,
                 column_split: int = 2) -> None:
        super().__init__(org)
        self.column_split = min(column_split, self.column_bits)
        hash_partners = hash_partners or {}

        cursor = 0
        self._offset_lsb = cursor
        cursor += self.offset_bits
        self._col_lo_lsb = cursor
        cursor += self.column_split
        channel_lsb = cursor
        cursor += self.channel_bits
        self._col_hi_lsb = cursor
        cursor += self.column_bits - self.column_split
        bg_lsb = cursor
        cursor += self.bank_group_bits
        bank_lsb = cursor
        cursor += self.bank_bits
        rank_lsb = cursor
        cursor += self.rank_bits
        self.row_lsb = cursor
        cursor += self.row_bits
        assert cursor == self.total_bits

        def partners_for(name: str, width: int) -> Tuple[Tuple[int, ...], ...]:
            raw = hash_partners.get(name, ())
            resolved: List[Tuple[int, ...]] = []
            for i in range(width):
                row_bit_indices = raw[i] if i < len(raw) else ()
                resolved.append(tuple(self.row_lsb + rb for rb in row_bit_indices))
            return tuple(resolved)

        self.fields: Dict[str, FieldSpec] = {
            "channel": FieldSpec("channel", self.channel_bits, channel_lsb,
                                 partners_for("channel", self.channel_bits)),
            "bank_group": FieldSpec("bank_group", self.bank_group_bits, bg_lsb,
                                    partners_for("bank_group", self.bank_group_bits)),
            "bank": FieldSpec("bank", self.bank_bits, bank_lsb,
                              partners_for("bank", self.bank_bits)),
            "rank": FieldSpec("rank", self.rank_bits, rank_lsb,
                              partners_for("rank", self.rank_bits)),
        }

    # -- mapping ---------------------------------------------------------- #

    def to_dram(self, phys: int) -> DramAddress:
        self.check_range(phys)
        col_lo = (phys >> self._col_lo_lsb) & ((1 << self.column_split) - 1)
        col_hi_width = self.column_bits - self.column_split
        col_hi = (phys >> self._col_hi_lsb) & ((1 << col_hi_width) - 1)
        column = (col_hi << self.column_split) | col_lo
        row = (phys >> self.row_lsb) & ((1 << self.row_bits) - 1)
        fields = self.fields
        return self.stamp_indices(
            fields["channel"].extract(phys),
            fields["rank"].extract(phys),
            fields["bank_group"].extract(phys),
            fields["bank"].extract(phys),
            row,
            column,
        )

    def from_dram(self, addr: DramAddress) -> int:
        phys = addr.row << self.row_lsb
        # Row bits are placed first so hash contributions can be undone.
        col_lo = addr.column & ((1 << self.column_split) - 1)
        col_hi = addr.column >> self.column_split
        phys |= col_lo << self._col_lo_lsb
        phys |= col_hi << self._col_hi_lsb
        for name, value in (("channel", addr.channel), ("rank", addr.rank),
                            ("bank_group", addr.bank_group), ("bank", addr.bank)):
            spec = self.fields[name]
            home = value ^ spec.hash_part(phys)
            phys |= (home & ((1 << spec.width) - 1)) << spec.home_lsb
        return phys

    # -- hash visibility for partition/coloring logic ---------------------- #

    def uses_top_row_bits_in_hash(self, top_bits: int) -> bool:
        """Whether any hash partner falls in the top ``top_bits`` row bits."""
        threshold = self.row_lsb + self.row_bits - top_bits
        for spec in self.fields.values():
            for partners in spec.partners:
                if any(p >= threshold for p in partners):
                    return True
        return False


class SkylakeMapping(XorFieldMapping):
    """The baseline host mapping of Figure 4a (Skylake-style XOR hashing)."""

    def __init__(self, org: DramOrgConfig) -> None:
        super().__init__(
            org,
            hash_partners={
                # Row bits (by row-relative index) XORed into each field bit.
                "channel": [(0, 2, 4, 6, 8)],
                "bank_group": [(1, 5), (3, 7)],
                "bank": [(2, 6), (4, 8)],
                "rank": [(0, 3, 6, 9)][: max(1, org.ranks_per_channel.bit_length() - 1)],
            },
        )


class LinearMapping(XorFieldMapping):
    """A simple non-hashed mapping (row:rank:bank:column:channel:offset)."""

    def __init__(self, org: DramOrgConfig) -> None:
        super().__init__(org, hash_partners={})


def skylake_mapping(org: DramOrgConfig) -> SkylakeMapping:
    """Factory for the baseline Skylake-style mapping."""
    return SkylakeMapping(org)


def linear_mapping(org: DramOrgConfig) -> LinearMapping:
    """Factory for the non-hashed linear mapping."""
    return LinearMapping(org)


def partition_friendly_mapping(org: DramOrgConfig) -> XorFieldMapping:
    """The proposed host mapping of Figure 4b.

    Identical hashing philosophy to the Skylake mapping, but the hash
    partners avoid the top ``log2(banks_per_rank)`` row bits so the most
    significant physical address bits only determine the DRAM row — the
    property the bank-partition remap requires (Section III-C).
    """
    protect = _bits_needed(org.bank_groups * org.banks_per_group)
    limit = _bits_needed(org.rows_per_bank) - protect

    def clamp(groups: Sequence[Sequence[int]]) -> List[Tuple[int, ...]]:
        return [tuple(b for b in grp if b < limit) for grp in groups]

    return XorFieldMapping(
        org,
        hash_partners={
            "channel": clamp([(0, 2, 4, 6, 8)]),
            "bank_group": clamp([(1, 5), (3, 7)]),
            "bank": clamp([(2, 6), (4, 8)]),
            "rank": clamp([(0, 3, 6, 9)][: max(1, org.ranks_per_channel.bit_length() - 1)]),
        },
    )
