"""Bank partitioning between host-reserved and shared banks (Section III-C).

Chopim reserves a small number of banks per rank for data shared between the
host and the NDAs and keeps the remaining banks exclusively for host-only
tasks.  Unlike prior bank-partitioning schemes, this one is compatible with
huge pages and with XOR-hashed interleaving because it operates *after* the
hardware mapping function:

1. The OS carves the physical address space into a bottom *host-only* region
   (``(B - N) / B`` of capacity, where ``B`` is banks per rank and ``N`` the
   reserved count) and a top *shared* region (``N / B`` of capacity) that it
   never hands out to ordinary allocations.
2. Host-only addresses go through the normal (hashed) mapping.  If the result
   lands in a reserved bank, the bank bits are swapped with the most
   significant row bits; because the host-only region never has those MSBs
   set to a reserved-bank value, the final bank is always a host bank and no
   aliasing can occur.
3. Shared-region addresses are mapped by a simple NDA-locality-friendly
   layout that places them exactly in the reserved banks, interleaving ranks
   at DRAM-row granularity so NDA operands stay rank-aligned (Figure 3).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import DramOrgConfig
from repro.addressing.mapping import AddressMapping, XorFieldMapping, partition_friendly_mapping
from repro.dram.commands import DramAddress


class BankPartitionMapping(AddressMapping):
    """Address mapping with host-reserved and shared bank partitions."""

    def __init__(self, org: DramOrgConfig, reserved_banks_per_rank: int = 1,
                 base: Optional[XorFieldMapping] = None) -> None:
        super().__init__(org)
        if not 0 < reserved_banks_per_rank < org.banks_per_rank:
            raise ValueError(
                "reserved_banks_per_rank must be between 1 and banks_per_rank - 1"
            )
        self.base = base if base is not None else partition_friendly_mapping(org)
        bank_total_bits = self.bank_group_bits + self.bank_bits
        if self.base.uses_top_row_bits_in_hash(bank_total_bits):
            raise ValueError(
                "base mapping hashes the top row bits; bank partitioning requires "
                "the physical MSBs to map only to the row address (Figure 4b)"
            )
        self.reserved_banks_per_rank = reserved_banks_per_rank
        self.bank_total_bits = bank_total_bits
        self.banks_per_rank = org.banks_per_rank
        #: Flat bank indices (bank_group * banks_per_group + bank) reserved
        #: for the shared region, taken from the top of the bank space.
        self.reserved_banks: Tuple[int, ...] = tuple(
            range(org.banks_per_rank - reserved_banks_per_rank, org.banks_per_rank)
        )
        bank_fraction = reserved_banks_per_rank / org.banks_per_rank
        self.shared_capacity_bytes = int(org.total_bytes * bank_fraction)
        self.host_capacity_bytes = org.total_bytes - self.shared_capacity_bytes
        # Geometry of the shared-region layout (row-granular rank interleave).
        self._shared_rows_per_bank = org.rows_per_bank
        self._row_bytes = org.row_bytes

    # ------------------------------------------------------------------ #
    # Region predicates
    # ------------------------------------------------------------------ #

    def is_shared_address(self, phys: int) -> bool:
        """Whether ``phys`` falls in the shared (NDA-accessible) region."""
        self.check_range(phys)
        return phys >= self.host_capacity_bytes

    def is_reserved_bank(self, bank_group: int, bank: int) -> bool:
        flat = bank_group * self.org.banks_per_group + bank
        return flat in self.reserved_banks

    def shared_base(self) -> int:
        """Physical base address of the shared region."""
        return self.host_capacity_bytes

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #

    def to_dram(self, phys: int) -> DramAddress:
        self.check_range(phys)
        if phys >= self.host_capacity_bytes:
            return self._shared_to_dram(phys - self.host_capacity_bytes)
        return self._host_to_dram(phys)

    def from_dram(self, addr: DramAddress) -> int:
        if self.is_reserved_bank(addr.bank_group, addr.bank):
            return self._shared_from_dram(addr) + self.host_capacity_bytes
        return self._host_from_dram(addr)

    # -- host-only region -------------------------------------------------- #

    def _host_to_dram(self, phys: int) -> DramAddress:
        addr = self.base.to_dram(phys)
        flat = addr.bank_group * self.org.banks_per_group + addr.bank
        if flat not in self.reserved_banks:
            return addr
        # Swap the bank bits with the most significant row bits.
        row_shift = self.row_bits - self.bank_total_bits
        row_msb = addr.row >> row_shift
        row_rest = addr.row & ((1 << row_shift) - 1)
        new_flat = row_msb
        new_row = (flat << row_shift) | row_rest
        return self.stamp_indices(
            addr.channel,
            addr.rank,
            new_flat // self.org.banks_per_group,
            new_flat % self.org.banks_per_group,
            new_row,
            addr.column,
        )

    def _host_from_dram(self, addr: DramAddress) -> int:
        row_shift = self.row_bits - self.bank_total_bits
        row_msb = addr.row >> row_shift
        if row_msb in self.reserved_banks:
            # This location was produced by a swap; undo it.
            flat = addr.bank_group * self.org.banks_per_group + addr.bank
            orig_flat = row_msb
            orig_row = (flat << row_shift) | (addr.row & ((1 << row_shift) - 1))
            addr = DramAddress(
                channel=addr.channel,
                rank=addr.rank,
                bank_group=orig_flat // self.org.banks_per_group,
                bank=orig_flat % self.org.banks_per_group,
                row=orig_row,
                column=addr.column,
            )
        return self.base.from_dram(addr)

    # -- shared region ------------------------------------------------------ #
    #
    # Shared offsets are laid out, from LSB to MSB, as:
    #   [cache-line offset | column | channel | rank | reserved-bank index | row]
    # so one DRAM row (8 KiB) is contiguous, consecutive rows rotate across
    # channels and ranks, and NDA operands allocated at system-row-aligned
    # offsets remain rank-aligned.

    def _shared_to_dram(self, offset: int) -> DramAddress:
        cl = offset >> self.offset_bits
        column = cl & (self.org.columns_per_row - 1)
        cl >>= self.column_bits
        channel = cl & (self.org.channels - 1)
        cl >>= self.channel_bits
        rank = cl & (self.org.ranks_per_channel - 1)
        cl >>= self.rank_bits
        bank_index = cl % self.reserved_banks_per_rank
        row = cl // self.reserved_banks_per_rank
        flat = self.reserved_banks[bank_index]
        return self.stamp_indices(
            channel,
            rank,
            flat // self.org.banks_per_group,
            flat % self.org.banks_per_group,
            row,
            column,
        )

    def _shared_from_dram(self, addr: DramAddress) -> int:
        flat = addr.bank_group * self.org.banks_per_group + addr.bank
        bank_index = self.reserved_banks.index(flat)
        cl = addr.row * self.reserved_banks_per_rank + bank_index
        cl = (cl << self.rank_bits) | addr.rank
        cl = (cl << self.channel_bits) | addr.channel
        cl = (cl << self.column_bits) | addr.column
        return cl << self.offset_bits

    # ------------------------------------------------------------------ #
    # Properties of the partition
    # ------------------------------------------------------------------ #

    def host_banks(self) -> List[int]:
        """Flat bank indices available to host-only traffic."""
        return [b for b in range(self.org.banks_per_rank)
                if b not in self.reserved_banks]

    def shared_stride_bytes(self) -> int:
        """Bytes of shared space per (channel, rank) rotation period."""
        return self._row_bytes * self.org.channels * self.org.ranks_per_channel
