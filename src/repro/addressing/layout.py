"""NDA operand layout: rank alignment of operands (Section III-A, Figure 3).

Coarse-grain NDA vector instructions require every operand of an instruction
to be fully local to one NDA (one rank).  Chopim achieves this without data
copies by combining

* coarse allocation — operands are allocated at *system-row* granularity
  (one DRAM row per bank of the system, 2 MiB in the reference system), and
* OS frame coloring — the OS only hands out frames whose physical-frame-number
  bits contribute the same (channel, rank) hash value, so equal offsets of
  two operands land in the same rank.

This module provides the layout queries used by the runtime and the tests:
locating individual elements, verifying rank alignment of operand groups, and
summarizing how an allocation distributes over ranks and banks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.addressing.mapping import AddressMapping
from repro.dram.commands import DramAddress


def element_location(mapping: AddressMapping, base_phys: int, index: int,
                     elem_bytes: int = 4) -> DramAddress:
    """DRAM location of element ``index`` of an operand starting at ``base_phys``."""
    return mapping.to_dram(base_phys + index * elem_bytes)


def rank_of_element(mapping: AddressMapping, base_phys: int, index: int,
                    elem_bytes: int = 4) -> Tuple[int, int]:
    """(channel, rank) of element ``index`` of an operand."""
    addr = element_location(mapping, base_phys, index, elem_bytes)
    return (addr.channel, addr.rank)


def check_operand_alignment(mapping: AddressMapping, bases: Sequence[int],
                            num_elements: int, elem_bytes: int = 4,
                            sample_stride: int = 1) -> List[int]:
    """Indices at which operands are *not* co-located in the same rank.

    Checks every ``sample_stride``-th element index; an empty return value
    means all sampled indices are aligned.  This is the Figure 3 property:
    with the Chopim layout all elements with equal index live in the same
    (channel, rank); with the naive layout they generally do not.
    """
    if len(bases) < 2:
        return []
    misaligned: List[int] = []
    for index in range(0, num_elements, max(1, sample_stride)):
        reference = rank_of_element(mapping, bases[0], index, elem_bytes)
        for base in bases[1:]:
            if rank_of_element(mapping, base, index, elem_bytes) != reference:
                misaligned.append(index)
                break
    return misaligned


@dataclass(frozen=True)
class RowSegment:
    """A contiguous run of columns of one DRAM row holding operand data."""

    channel: int
    rank: int
    bank_group: int
    bank: int
    row: int
    column_start: int
    column_count: int

    @property
    def global_rank(self) -> Tuple[int, int]:
        return (self.channel, self.rank)


class OperandPlacement:
    """Summary of how a physical allocation spreads over the DRAM geometry.

    The summary is computed by walking the allocation at cache-line
    granularity and coalescing consecutive cache lines that share a row into
    :class:`RowSegment` runs.  For very large operands pass ``max_bytes`` to
    inspect a prefix; the layouts are periodic so a prefix of a few
    system rows characterizes the whole placement.
    """

    def __init__(self, mapping: AddressMapping, base_phys: int, num_bytes: int,
                 max_bytes: Optional[int] = None) -> None:
        self.mapping = mapping
        self.base_phys = base_phys
        self.num_bytes = num_bytes
        inspect_bytes = num_bytes if max_bytes is None else min(num_bytes, max_bytes)
        self.segments: List[RowSegment] = list(
            self._walk(mapping, base_phys, inspect_bytes)
        )

    @staticmethod
    def _walk(mapping: AddressMapping, base_phys: int,
              num_bytes: int) -> Iterator[RowSegment]:
        cl_bytes = mapping.org.cacheline_bytes
        num_lines = (num_bytes + cl_bytes - 1) // cl_bytes
        current: Optional[DramAddress] = None
        start_col = 0
        count = 0
        for i in range(num_lines):
            addr = mapping.to_dram(base_phys + i * cl_bytes)
            if (current is not None
                    and addr.channel == current.channel and addr.rank == current.rank
                    and addr.bank_group == current.bank_group
                    and addr.bank == current.bank and addr.row == current.row
                    and addr.column == start_col + count):
                count += 1
                continue
            if current is not None:
                yield RowSegment(current.channel, current.rank, current.bank_group,
                                 current.bank, current.row, start_col, count)
            current = addr
            start_col = addr.column
            count = 1
        if current is not None:
            yield RowSegment(current.channel, current.rank, current.bank_group,
                             current.bank, current.row, start_col, count)

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #

    def bytes_per_rank(self) -> Dict[Tuple[int, int], int]:
        """Bytes of the inspected prefix held by each (channel, rank)."""
        cl_bytes = self.mapping.org.cacheline_bytes
        totals: Dict[Tuple[int, int], int] = defaultdict(int)
        for seg in self.segments:
            totals[seg.global_rank] += seg.column_count * cl_bytes
        return dict(totals)

    def banks_used(self) -> Dict[Tuple[int, int], set]:
        """Flat bank indices touched in each (channel, rank)."""
        banks: Dict[Tuple[int, int], set] = defaultdict(set)
        for seg in self.segments:
            banks[seg.global_rank].add(
                seg.bank_group * self.mapping.org.banks_per_group + seg.bank
            )
        return dict(banks)

    def is_balanced(self, tolerance: float = 0.25) -> bool:
        """Whether the inspected bytes spread roughly evenly over all ranks."""
        per_rank = self.bytes_per_rank()
        total_ranks = self.mapping.org.channels * self.mapping.org.ranks_per_channel
        if len(per_rank) < total_ranks:
            return False
        values = list(per_rank.values())
        mean = sum(values) / len(values)
        return all(abs(v - mean) <= tolerance * mean for v in values)

    def average_run_length(self) -> float:
        """Mean contiguous columns per segment (row-buffer locality proxy)."""
        if not self.segments:
            return 0.0
        return sum(s.column_count for s in self.segments) / len(self.segments)


def partition_elements_per_rank(num_elements: int, total_ranks: int) -> List[int]:
    """Evenly split ``num_elements`` over ``total_ranks`` (first ranks get extras).

    The Chopim runtime uses this split when it issues one NDA instruction per
    rank for a rank-aligned operand group.
    """
    if total_ranks <= 0:
        raise ValueError("total_ranks must be positive")
    base, remainder = divmod(num_elements, total_ranks)
    return [base + (1 if r < remainder else 0) for r in range(total_ranks)]
