"""Physical-address to DRAM-address mapping, bank partitioning and layout.

This package implements the three addressing-related pieces of Chopim:

* :mod:`repro.addressing.mapping` — the baseline Skylake-style XOR-hashed
  interleaving (paper Figure 4a) plus simple linear mappings.
* :mod:`repro.addressing.bank_partition` — the proposed bank-partitioning
  remap that reserves banks for the shared host/NDA region while remaining
  compatible with huge pages and hashed interleaving (Figure 4b).
* :mod:`repro.addressing.layout` — the NDA operand-locality layout: checks
  and helpers that guarantee all operands of an NDA instruction stay aligned
  to the same rank (Figure 3).
"""

from repro.addressing.mapping import (
    AddressMapping,
    LinearMapping,
    SkylakeMapping,
    skylake_mapping,
    linear_mapping,
    partition_friendly_mapping,
)
from repro.addressing.bank_partition import BankPartitionMapping
from repro.addressing.layout import (
    OperandPlacement,
    RowSegment,
    check_operand_alignment,
    element_location,
    rank_of_element,
)

__all__ = [
    "AddressMapping",
    "LinearMapping",
    "SkylakeMapping",
    "skylake_mapping",
    "linear_mapping",
    "partition_friendly_mapping",
    "BankPartitionMapping",
    "OperandPlacement",
    "RowSegment",
    "check_operand_alignment",
    "element_location",
    "rank_of_element",
]
