"""Platform layer: preset derivation, validation, and engine equivalence.

Three contracts are pinned here:

* **Baseline bit-exactness** — the ``ddr4-2400`` preset derives *exactly*
  the legacy hand-entered Table II defaults (every sub-config compared
  field-for-field), so the platform layer cannot drift the paper numbers.
* **Derivation sanity** — every registered preset validates, quantization
  follows the ceil(ns * clock) rule, and parameter sets the timing model
  cannot represent fail at construction with actionable messages.
* **Engine equivalence per platform** — cycle == event (with the burst
  fast path at its default) bit-exactly on the non-default presets, the
  acceptance contract of the platform refactor.  ``REPRO_PLATFORM``
  focuses the equivalence sweep on one preset (the CI platform matrix
  uses this).
"""

import dataclasses
import os

import pytest

from repro.config import (
    DramTimingConfig,
    HostConfig,
    SystemConfig,
    default_config,
    scaled_config,
)
from repro.core.energy import EnergyModel
from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem
from repro.experiments.common import resolve_config
from repro.nda.isa import NdaOpcode
from repro.platform import (
    DEFAULT_PLATFORM,
    PLATFORM_REGISTRY,
    PlatformSpec,
    get_platform,
    ns_to_cycles,
    platform_config,
    platform_names,
    register_platform,
)

NON_DEFAULT = [name for name in platform_names() if name != DEFAULT_PLATFORM]

#: Presets exercised by the (comparatively expensive) equivalence sweep.
#: The CI platform matrix pins one preset via REPRO_PLATFORM; locally the
#: acceptance trio of non-default presets runs.
_ENV_PLATFORM = os.environ.get("REPRO_PLATFORM")
EQUIV_PLATFORMS = ([_ENV_PLATFORM] if _ENV_PLATFORM
                   else ["ddr4-3200", "lpddr4-3200", "ddr5-4800", "hbm2"])


class TestBaselineBitExactness:
    """ddr4-2400 must reproduce the legacy defaults exactly."""

    def test_every_subconfig_matches_legacy_defaults(self):
        legacy = default_config()
        derived = platform_config("ddr4-2400")
        assert derived.timing == legacy.timing
        assert derived.org == legacy.org
        assert derived.host == legacy.host
        assert derived.nda == legacy.nda
        assert derived.energy == legacy.energy

    def test_host_tick_ratio_is_bit_identical(self):
        legacy = default_config().host.cycles_per_dram_cycle
        derived = platform_config("ddr4-2400").host.cycles_per_dram_cycle
        assert derived == legacy  # exact float equality, not approx

    def test_scaled_shapes_match_scaled_config(self):
        for channels, ranks in ((1, 1), (2, 4), (2, 8)):
            legacy = scaled_config(channels, ranks)
            derived = platform_config("ddr4-2400", channels=channels,
                                      ranks_per_channel=ranks)
            assert derived.timing == legacy.timing
            assert derived.org == legacy.org

    def test_resolve_config_default_goes_through_legacy_path(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLATFORM", raising=False)
        assert resolve_config(None, 2, 4).org == scaled_config(2, 4).org
        assert resolve_config(DEFAULT_PLATFORM).org == default_config().org

    def test_resolve_config_honors_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLATFORM", "lpddr4-3200")
        assert resolve_config().platform == "lpddr4-3200"
        # An explicit argument wins over the environment.
        assert resolve_config("hbm2").platform == "hbm2"

    def test_resolve_config_treats_empty_environment_as_unset(self, monkeypatch):
        # `REPRO_PLATFORM= cmd` is the common shell idiom for "unset".
        monkeypatch.setenv("REPRO_PLATFORM", "")
        assert resolve_config().platform == DEFAULT_PLATFORM
        assert resolve_config().org == default_config().org

    def test_resolve_config_keeps_native_geometry_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLATFORM", raising=False)
        hbm = resolve_config("hbm2")
        assert (hbm.org.channels, hbm.org.ranks_per_channel) == (8, 1)
        rescaled = resolve_config("hbm2", channels=2, ranks_per_channel=2)
        assert (rescaled.org.channels, rescaled.org.ranks_per_channel) == (2, 2)


class TestDerivation:
    def test_ns_to_cycles_rounds_up(self):
        assert ns_to_cycles(13.32, 1.2) == 16   # 15.984 -> 16
        assert ns_to_cycles(10.0, 1.2) == 12    # exact product stays put
        assert ns_to_cycles(7800.0, 1.2) == 9360  # float error absorbed
        assert ns_to_cycles(0.1, 1.2) == 1      # clamped at one cycle

    def test_command_clock_is_half_the_data_rate(self):
        for spec in PLATFORM_REGISTRY.values():
            assert spec.dram_clock_ghz == spec.data_rate_mtps / 2000.0
            assert spec.org_config().dram_clock_ghz == spec.dram_clock_ghz

    @pytest.mark.parametrize("name", platform_names())
    def test_every_preset_validates(self, name):
        cfg = platform_config(name)
        cfg.validate()
        assert cfg.platform == name
        assert cfg.timing.read_to_write > 0
        assert cfg.timing.write_to_read_diff_rank > 0
        # The PE clock and the host tick ratio are derived from the
        # platform's command clock, never hand-entered.
        assert cfg.nda.pe_clock_ghz == cfg.org.dram_clock_ghz
        assert cfg.host.cycles_per_dram_cycle == pytest.approx(
            cfg.host.cpu_clock_ghz / cfg.org.dram_clock_ghz)

    @pytest.mark.parametrize("name", platform_names())
    def test_scaling_overrides_only_touch_shape(self, name):
        base = platform_config(name)
        scaled = platform_config(name, channels=1, ranks_per_channel=4,
                                 cores=8)
        assert scaled.timing == base.timing
        assert scaled.org.channels == 1
        assert scaled.org.ranks_per_channel == 4
        assert scaled.host.cores == 8
        assert scaled.org.dram_clock_ghz == base.org.dram_clock_ghz

    def test_burst_length_drives_tbl_and_cadence(self):
        assert get_platform("ddr5-4800").timing_config().tBL == 8   # BL16
        assert get_platform("hbm2").timing_config().tBL == 2        # BL4

    @pytest.mark.parametrize("name", platform_names())
    def test_one_column_command_moves_one_cache_line(self, name):
        # The simulator models one cache line per column command, so every
        # preset's interface width x burst length must equal the cache line
        # — otherwise the advertised peak bandwidth is unreachable by
        # construction (this caught ddr5-4800's original 64-bit geometry).
        spec = get_platform(name)
        assert spec.chips_per_rank * spec.burst_transfers == \
            spec.cacheline_bytes

    @pytest.mark.parametrize("name", platform_names())
    def test_peak_bandwidth_is_cadence_achievable(self, name):
        cfg = platform_config(name)
        cadence = max(cfg.timing.tCCDS, cfg.timing.tBL)
        per_channel = (cfg.org.cacheline_bytes
                       * cfg.org.dram_clock_ghz / cadence)
        assert cfg.org.peak_channel_bandwidth_gbs == pytest.approx(
            per_channel)

    def test_rescaled_retimes_analog_parameters(self):
        slow = get_platform("ddr4-2400")
        fast = slow.rescaled(3200)
        assert fast.name == "ddr4-2400@3200"
        assert fast.dram_clock_ghz == pytest.approx(1.6)
        # Same nanoseconds, more cycles.
        assert fast.timing_config().tRCD > slow.timing_config().tRCD

    def test_unknown_platform_names_the_valid_ones(self):
        with pytest.raises(KeyError, match="ddr4-2400"):
            get_platform("ddr3-1600")

    def test_register_platform_rejects_duplicates_and_validates(self):
        spec = get_platform("ddr4-2400").rescaled(2666, name="ddr4-2666")
        try:
            registered = register_platform(spec)
            assert get_platform("ddr4-2666") is registered
            with pytest.raises(ValueError, match="already registered"):
                register_platform(spec)
        finally:
            PLATFORM_REGISTRY.pop("ddr4-2666", None)

    def test_register_platform_rejects_invalid_derivations(self):
        bad = dataclasses.replace(
            get_platform("lpddr4-3200"), name="lpddr4-broken", tRTRS_ck=1)
        with pytest.raises(ValueError, match="write_to_read_diff_rank"):
            register_platform(bad)
        assert "lpddr4-broken" not in PLATFORM_REGISTRY


class TestTurnaroundValidation:
    """Derived turnaround spacings: reject at validate, clamp in properties."""

    def test_validate_rejects_non_positive_read_to_write(self):
        bad = dataclasses.replace(DramTimingConfig(), tCWL=30)
        with pytest.raises(ValueError, match=r"read_to_write.*tCL \+ tBL"):
            bad.validate()

    def test_validate_rejects_non_positive_write_to_read_diff_rank(self):
        # An LPDDR-like read/write latency gap with a DDR4-sized tRTRS.
        bad = dataclasses.replace(DramTimingConfig(), tCL=28, tCWL=14,
                                  tRCD=28, tRP=28, tRAS=50, tRC=80)
        with pytest.raises(ValueError, match="write_to_read_diff_rank"):
            bad.validate()

    def test_properties_clamp_unvalidated_configs_at_zero(self):
        unvalidated = dataclasses.replace(DramTimingConfig(), tCL=40)
        assert unvalidated.tCWL + unvalidated.tBL + unvalidated.tRTRS - 40 < 0
        assert unvalidated.write_to_read_diff_rank == 0
        unvalidated = dataclasses.replace(DramTimingConfig(), tCWL=40)
        assert unvalidated.read_to_write == 0

    def test_host_clock_divergence_is_rejected(self):
        cfg = default_config()
        cfg.host = dataclasses.replace(cfg.host, dram_clock_ghz=0.8)
        with pytest.raises(ValueError, match="dram_clock_ghz"):
            cfg.validate()

    def test_system_config_resyncs_host_clock_on_construction(self):
        lp = get_platform("lpddr4-3200")
        cfg = SystemConfig(org=lp.org_config(), timing=lp.timing_config())
        # The default HostConfig carries the DDR4 clock; construction must
        # re-derive it from the organization.
        assert cfg.host.dram_clock_ghz == lp.dram_clock_ghz
        assert HostConfig().dram_clock_ghz == 1.2  # untouched default


class TestPlatformModels:
    def test_energy_model_uses_platform_column_cadence(self):
        ddr4 = platform_config("ddr4-2400")
        hbm = platform_config("hbm2")
        ddr4_model = EnergyModel(ddr4.org, ddr4.energy, timing=ddr4.timing)
        hbm_model = EnergyModel(hbm.org, hbm.energy, timing=hbm.timing)
        # DDR4's cadence is max(tCCDS=4, tBL=4) = 4; HBM2's is max(2, 2).
        assert ddr4_model._column_cadence == 4
        assert hbm_model._column_cadence == 2
        assert hbm_model.theoretical_max_host_power_w() > 0

    def test_svrg_analytic_model_scales_with_platform_bandwidth(self):
        from repro.apps.svrg import SvrgTimingModel
        base = SvrgTimingModel.analytic(4)
        hbm = SvrgTimingModel.analytic(4, config=platform_config("hbm2"))
        assert base.host_stream_gbs == pytest.approx(2 * 19.2 * 0.66)
        per_rank = platform_config("hbm2").org.peak_rank_internal_bandwidth_gbs
        assert hbm.host_stream_gbs == pytest.approx(8 * per_rank * 0.66)
        assert hbm.nda_stream_gbs > base.nda_stream_gbs


def _run_both_engines(platform, mode, mix, opcode, *, throttle="next_rank",
                      elements=1 << 12, cycles=900, warmup=100):
    results = {}
    for engine in ("cycle", "event"):
        system = ChopimSystem(config=platform_config(platform), mode=mode,
                              mix=mix, throttle=throttle, engine=engine)
        if mode.has_nda_traffic:
            system.set_nda_workload(opcode, elements_per_rank=elements)
        results[engine] = dataclasses.asdict(
            system.run(cycles=cycles, warmup=warmup))
    return results


class TestPlatformEngineEquivalence:
    """cycle == event == burst, bit-exactly, on the non-default presets."""

    @pytest.mark.parametrize("platform", EQUIV_PLATFORMS)
    def test_concurrent_copy(self, platform):
        results = _run_both_engines(platform, AccessMode.BANK_PARTITIONED,
                                    "mix1", NdaOpcode.COPY)
        assert results["cycle"] == results["event"]

    @pytest.mark.parametrize("platform", EQUIV_PLATFORMS)
    def test_nda_only_dot_stream(self, platform):
        results = _run_both_engines(platform, AccessMode.NDA_ONLY, None,
                                    NdaOpcode.DOT, throttle="issue_if_idle",
                                    elements=1 << 13, cycles=1200)
        assert results["cycle"] == results["event"]

    @pytest.mark.parametrize("platform", EQUIV_PLATFORMS)
    def test_shared_axpy_with_stochastic_throttle(self, platform):
        results = _run_both_engines(platform, AccessMode.SHARED, "mix5",
                                    NdaOpcode.AXPY, throttle="stochastic")
        assert results["cycle"] == results["event"]


class TestPlatformExperimentPlumbing:
    def test_build_system_platform_axis(self):
        from repro.experiments.common import build_system
        system = build_system(AccessMode.HOST_ONLY, "mix8",
                              platform="ddr5-4800")
        assert system.config.platform == "ddr5-4800"
        assert system.config.org.bank_groups == 8

    def test_cross_platform_sweep_params_cover_all_presets(self):
        from repro.experiments.fig14_platforms import sweep_params
        params = sweep_params(cycles=100, warmup=10)
        assert {p["platform"] for p in params} == set(platform_names())
        # Every point is constructible (rank partitioning needs >= 2 ranks).
        assert all(p["ranks"] >= 2 or p["mode"] != "rank_partitioned"
                   for p in params)

    def test_cross_platform_point_runs(self):
        from repro.experiments.fig14_platforms import _point
        row = _point(platform="hbm2", channels=2, ranks=2, scheme="chopim",
                     mode=AccessMode.BANK_PARTITIONED.value, workload="dot",
                     mix="mix1", cycles=400, warmup=50,
                     elements_per_rank=1 << 11)
        assert row["platform"] == "hbm2"
        assert row["nda_bandwidth_gbs"] > 0
        assert 0 <= row["nda_bw_of_peak"] <= 1.0


def test_spec_is_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        get_platform("ddr4-2400").data_rate_mtps = 3200


def test_platform_names_lists_baseline_first():
    names = platform_names()
    assert names[0] == DEFAULT_PLATFORM
    assert len(names) >= 5


def test_platform_spec_equality_and_replace():
    spec = get_platform("ddr4-2400")
    assert dataclasses.replace(spec) == spec
    assert isinstance(spec, PlatformSpec)
