"""Equivalence suite: the event engine must be cycle-result-exact.

For every access mode, every throttle policy and a composite kernel
sequence, ``engine="event"`` must produce a :class:`SimulationResult` whose
every field — including floating-point metrics, per-rank idle breakdowns and
the energy table — is *identical* (not approximately equal) to
``engine="cycle"``.  This is the regression contract of the event-driven
fast-forwarding engine (see ARCHITECTURE.md).
"""

import dataclasses

import pytest

from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem, NdaKernelSpec
from repro.config import scaled_config
from repro.nda.isa import NdaOpcode

CYCLES = 1500
WARMUP = 150


def _build(engine, mode, mix=None, throttle="next_rank", config=None,
           stochastic_probability=0.25):
    return ChopimSystem(config=config, mode=mode, mix=mix, throttle=throttle,
                        stochastic_probability=stochastic_probability,
                        engine=engine)


def _assert_equivalent(configure, mode, mix=None, throttle="next_rank",
                       config=None, cycles=CYCLES, warmup=WARMUP,
                       stochastic_probability=0.25):
    results = {}
    for engine in ("cycle", "event"):
        system = _build(engine, mode, mix=mix, throttle=throttle,
                        config=config,
                        stochastic_probability=stochastic_probability)
        if configure is not None:
            configure(system)
        results[engine] = dataclasses.asdict(
            system.run(cycles=cycles, warmup=warmup))
    cycle_result, event_result = results["cycle"], results["event"]
    mismatched = [key for key in cycle_result
                  if cycle_result[key] != event_result[key]]
    assert not mismatched, (
        f"event engine diverged on {mismatched}: "
        + "; ".join(f"{k}: {cycle_result[k]!r} != {event_result[k]!r}"
                    for k in mismatched[:3])
    )


class TestEngineEquivalenceModes:
    """Every access mode, with its natural workload."""

    def test_host_only(self):
        _assert_equivalent(None, AccessMode.HOST_ONLY, mix="mix8")

    def test_host_only_memory_intensive(self):
        _assert_equivalent(None, AccessMode.HOST_ONLY, mix="mix1")

    def test_nda_only(self):
        def configure(system):
            system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 12)
        _assert_equivalent(configure, AccessMode.NDA_ONLY)

    def test_shared(self):
        def configure(system):
            system.set_nda_workload(NdaOpcode.AXPY, elements_per_rank=1 << 12)
        _assert_equivalent(configure, AccessMode.SHARED, mix="mix5")

    def test_bank_partitioned(self):
        def configure(system):
            system.set_nda_workload(NdaOpcode.COPY, elements_per_rank=1 << 12)
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix1")

    def test_rank_partitioned(self):
        def configure(system):
            system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 12)
        _assert_equivalent(configure, AccessMode.RANK_PARTITIONED, mix="mix8")


class TestEngineEquivalenceThrottles:
    """Every write-throttle policy, under the write-heavy COPY workload."""

    @pytest.mark.parametrize("throttle", ["issue_if_idle", "next_rank",
                                          "stochastic"])
    def test_policy(self, throttle):
        def configure(system):
            system.set_nda_workload(NdaOpcode.COPY, elements_per_rank=1 << 12)
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix5",
                           throttle=throttle)

    def test_stochastic_low_probability(self):
        def configure(system):
            system.set_nda_workload(NdaOpcode.COPY, elements_per_rank=1 << 12)
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix8",
                           throttle="stochastic",
                           stochastic_probability=1.0 / 16.0)


class TestEngineEquivalenceComposite:
    def test_composite_kernel_sequence(self):
        """A mixed read/write application-like kernel sequence."""
        def configure(system):
            system.set_nda_workload_sequence([
                NdaKernelSpec(NdaOpcode.GEMV, 512, matrix_columns=64),
                NdaKernelSpec(NdaOpcode.AXPY, 512),
                NdaKernelSpec(NdaOpcode.DOT, 512),
                NdaKernelSpec(NdaOpcode.COPY, 256),
            ])
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix5")

    def test_scaled_configuration(self):
        """The fig14 largest point: 2 channels x 4 ranks."""
        def configure(system):
            system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 13)
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix1",
                           config=scaled_config(2, 4), cycles=1200,
                           warmup=120)

    def test_async_fine_grain_launches(self):
        """Fine-grain async launches stress the launch-packet path."""
        def configure(system):
            system.set_nda_workload(NdaOpcode.NRM2, elements_per_rank=1 << 12,
                                    cache_blocks=16, async_launch=True)
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix1")

    def test_no_warmup(self):
        def configure(system):
            system.set_nda_workload(NdaOpcode.SCAL, elements_per_rank=1 << 11)
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix8",
                           warmup=0)


class TestEngineBehaviour:
    def test_event_engine_skips_cycles_when_idle(self):
        system = ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8",
                              engine="event")
        system.run(cycles=1500, warmup=0)
        assert system.engine.cycles_skipped > 0
        assert (system.engine.cycles_processed
                + system.engine.cycles_skipped) == 1500

    def test_cycle_engine_processes_every_cycle(self):
        system = ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8",
                              engine="cycle")
        system.run(cycles=500, warmup=0)
        assert system.engine.cycles_processed == 500

    def test_step_interoperates_with_run(self):
        """Manual step() driving (runtime API style) must stay coherent."""
        results = {}
        for engine in ("cycle", "event"):
            system = ChopimSystem(mode=AccessMode.NDA_ONLY, engine=engine)
            system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 10)
            for _ in range(200):
                system.step()
            results[engine] = dataclasses.asdict(system.run(cycles=800))
        assert results["cycle"] == results["event"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8",
                         engine="warp")
