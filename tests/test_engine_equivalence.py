"""Equivalence suite: every engine/backend must be cycle-result-exact.

For every access mode, every throttle policy, a composite kernel sequence
and a seeded random sample of full configurations, ``engine="event"`` must
produce a :class:`SimulationResult` whose every field — including
floating-point metrics, per-rank idle breakdowns and the energy table — is
*identical* (not approximately equal) to ``engine="cycle"``.  This is the
regression contract of the selective-wake engine and its dirty-notification
routing (see ARCHITECTURE.md).

The suite also carries a **backend axis**: when numpy is importable, every
assertion additionally runs the vectorized kernel backend
(``backend="kernel"``, under the event engine — so the batched scan, array
timing state and vectorized burst settlement all engage) and requires it to
match the scalar cycle oracle on every field.  A dedicated class pins the
kernel under the cycle engine too.  Without numpy the kernel legs drop out
and the suite still proves cycle == event on the pure-python backend.
"""

import dataclasses
import os
import random

import pytest

from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem, NdaKernelSpec
from repro.config import scaled_config
from repro.experiments.common import resolve_config
from repro.kernel import kernel_available
from repro.nda.isa import NdaOpcode

CYCLES = 1500
WARMUP = 150

#: (engine, backend) legs every equivalence assertion runs; index 0 is the
#: oracle all others are compared against.  The ``kernel`` leg runs with
#: the resident stepper in its default configuration (compiled when a C
#: toolchain is present, the pure-Python twin otherwise);
#: ``kernel-nostepper`` pins the plain per-cycle kernel path, and
#: ``kernel-pystepper`` (only meaningful when the compiled core exists)
#: pins the pure-Python stepper — so all three stepper configurations stay
#: on the equivalence contract.
_LEGS = [("cycle", "python"), ("event", "python")]
if kernel_available():
    from repro.kernel import compiled_available

    _LEGS.append(("event", "kernel"))
    _LEGS.append(("event", "kernel-nostepper"))
    if compiled_available():
        _LEGS.append(("event", "kernel-pystepper"))

requires_kernel = pytest.mark.skipif(
    not kernel_available(), reason="numpy unavailable: kernel backend off")


def _build(engine, mode, mix=None, throttle="next_rank", config=None,
           stochastic_probability=0.25, backend="python"):
    stepper = None
    forced = backend == "kernel-pystepper"
    if backend == "kernel-nostepper":
        backend, stepper = "kernel", False
    elif forced:
        backend, stepper = "kernel", True
        forced_env = os.environ.get("REPRO_FORCE_NO_COMPILED")
        os.environ["REPRO_FORCE_NO_COMPILED"] = "1"
    try:
        return ChopimSystem(config=config, mode=mode, mix=mix,
                            throttle=throttle,
                            stochastic_probability=stochastic_probability,
                            engine=engine, backend=backend, stepper=stepper)
    finally:
        if forced:
            if forced_env is None:
                os.environ.pop("REPRO_FORCE_NO_COMPILED", None)
            else:
                os.environ["REPRO_FORCE_NO_COMPILED"] = forced_env


def _assert_equivalent(configure, mode, mix=None, throttle="next_rank",
                       config=None, cycles=CYCLES, warmup=WARMUP,
                       stochastic_probability=0.25, legs=None):
    results = {}
    for engine, backend in (legs or _LEGS):
        system = _build(engine, mode, mix=mix, throttle=throttle,
                        config=config,
                        stochastic_probability=stochastic_probability,
                        backend=backend)
        if configure is not None:
            configure(system)
        results[(engine, backend)] = dataclasses.asdict(
            system.run(cycles=cycles, warmup=warmup))
    oracle_leg, *other_legs = list(results)
    oracle = results[oracle_leg]
    for leg in other_legs:
        result = results[leg]
        mismatched = [key for key in oracle if oracle[key] != result[key]]
        assert not mismatched, (
            f"{leg} diverged from {oracle_leg} on {mismatched}: "
            + "; ".join(f"{k}: {oracle[k]!r} != {result[k]!r}"
                        for k in mismatched[:3])
        )


class TestEngineEquivalenceModes:
    """Every access mode, with its natural workload."""

    def test_host_only(self):
        _assert_equivalent(None, AccessMode.HOST_ONLY, mix="mix8")

    def test_host_only_memory_intensive(self):
        _assert_equivalent(None, AccessMode.HOST_ONLY, mix="mix1")

    def test_nda_only(self):
        def configure(system):
            system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 12)
        _assert_equivalent(configure, AccessMode.NDA_ONLY)

    def test_shared(self):
        def configure(system):
            system.set_nda_workload(NdaOpcode.AXPY, elements_per_rank=1 << 12)
        _assert_equivalent(configure, AccessMode.SHARED, mix="mix5")

    def test_bank_partitioned(self):
        def configure(system):
            system.set_nda_workload(NdaOpcode.COPY, elements_per_rank=1 << 12)
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix1")

    def test_rank_partitioned(self):
        def configure(system):
            system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 12)
        _assert_equivalent(configure, AccessMode.RANK_PARTITIONED, mix="mix8")


class TestEngineEquivalenceThrottles:
    """Every write-throttle policy, under the write-heavy COPY workload."""

    @pytest.mark.parametrize("throttle", ["issue_if_idle", "next_rank",
                                          "stochastic"])
    def test_policy(self, throttle):
        def configure(system):
            system.set_nda_workload(NdaOpcode.COPY, elements_per_rank=1 << 12)
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix5",
                           throttle=throttle)

    def test_stochastic_low_probability(self):
        def configure(system):
            system.set_nda_workload(NdaOpcode.COPY, elements_per_rank=1 << 12)
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix8",
                           throttle="stochastic",
                           stochastic_probability=1.0 / 16.0)


class TestEngineEquivalenceComposite:
    def test_composite_kernel_sequence(self):
        """A mixed read/write application-like kernel sequence."""
        def configure(system):
            system.set_nda_workload_sequence([
                NdaKernelSpec(NdaOpcode.GEMV, 512, matrix_columns=64),
                NdaKernelSpec(NdaOpcode.AXPY, 512),
                NdaKernelSpec(NdaOpcode.DOT, 512),
                NdaKernelSpec(NdaOpcode.COPY, 256),
            ])
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix5")

    def test_scaled_configuration(self):
        """The fig14 largest point: 2 channels x 4 ranks."""
        def configure(system):
            system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 13)
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix1",
                           config=scaled_config(2, 4), cycles=1200,
                           warmup=120)

    def test_async_fine_grain_launches(self):
        """Fine-grain async launches stress the launch-packet path."""
        def configure(system):
            system.set_nda_workload(NdaOpcode.NRM2, elements_per_rank=1 << 12,
                                    cache_blocks=16, async_launch=True)
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix1")

    def test_no_warmup(self):
        def configure(system):
            system.set_nda_workload(NdaOpcode.SCAL, elements_per_rank=1 << 11)
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix8",
                           warmup=0)


def _fuzz_configs(count: int, seed: int = 0xC0F1):
    """Sample ``count`` full system configurations from a seeded RNG.

    The hand-picked classes above pin known-tricky interactions; this sweep
    pins the dirty-notification contract across the cartesian space of
    (platform, channels, ranks, mode, throttle, workload, mix)
    combinations, so a missing WakeHub route that only bites in an unusual
    combination cannot slip through.  The seed is fixed: failures are
    reproducible by index.  The platform axis weights the paper baseline
    (None) but keeps every non-default preset in rotation, so the
    cycle==event==burst contract is pinned on presets whose cadence, bank
    count and turnarounds all differ from DDR4-2400's.
    """
    rng = random.Random(seed)
    modes = [AccessMode.HOST_ONLY, AccessMode.SHARED,
             AccessMode.BANK_PARTITIONED, AccessMode.RANK_PARTITIONED,
             AccessMode.NDA_ONLY]
    opcodes = [NdaOpcode.DOT, NdaOpcode.AXPY, NdaOpcode.COPY,
               NdaOpcode.SCAL, NdaOpcode.NRM2, NdaOpcode.GEMV]
    platforms = [None, None, "ddr4-3200", "lpddr4-3200", "ddr5-4800", "hbm2"]
    configs = []
    while len(configs) < count:
        channels = rng.choice([1, 2])
        ranks = rng.choice([1, 2, 4])
        mode = rng.choice(modes)
        if mode is AccessMode.RANK_PARTITIONED and ranks < 2:
            continue  # needs host and NDA rank subsets
        configs.append({
            "channels": channels,
            "ranks": ranks,
            "mode": mode,
            "platform": rng.choice(platforms),
            "throttle": rng.choice(["issue_if_idle", "next_rank",
                                    "stochastic"]),
            "probability": rng.choice([0.25, 1.0 / 16.0]),
            "mix": rng.choice(["mix1", "mix5", "mix8"]),
            "opcode": rng.choice(opcodes),
            "elements": rng.choice([1 << 10, 1 << 11, 1 << 12]),
            "warmup": rng.choice([0, 100]),
        })
    return configs


_FUZZ_CONFIGS = _fuzz_configs(12)

#: Burst-heavy configurations: long NDA streams (the steady-state phases the
#: burst-issue fast path batches), zero host mix (uninterrupted streaks) and
#: write-heavy kernels (drain-tail bursts under every throttle).  The fuzz
#: class asserts cycle == event bit-exactly with bursting at its default
#: (enabled), so these pin the burst path's truncation contract.
_BURST_CONFIGS = [
    {"channels": 2, "ranks": 4, "mode": AccessMode.NDA_ONLY, "mix": None,
     "throttle": "issue_if_idle", "probability": 0.25,
     "opcode": NdaOpcode.DOT, "elements": 1 << 14, "warmup": 100},
    {"channels": 1, "ranks": 2, "mode": AccessMode.NDA_ONLY, "mix": None,
     "throttle": "issue_if_idle", "probability": 0.25,
     "opcode": NdaOpcode.COPY, "elements": 1 << 13, "warmup": 0},
    {"channels": 2, "ranks": 2, "mode": AccessMode.BANK_PARTITIONED,
     "mix": "mix1", "throttle": "next_rank", "probability": 0.25,
     "opcode": NdaOpcode.SCAL, "elements": 1 << 13, "warmup": 50},
    {"channels": 1, "ranks": 4, "mode": AccessMode.RANK_PARTITIONED,
     "mix": "mix8", "throttle": "issue_if_idle", "probability": 0.25,
     "opcode": NdaOpcode.AXPY, "elements": 1 << 13, "warmup": 0},
    {"channels": 2, "ranks": 2, "mode": AccessMode.SHARED, "mix": "mix5",
     "throttle": "stochastic", "probability": 1.0 / 16.0,
     "opcode": NdaOpcode.COPY, "elements": 1 << 12, "warmup": 100},
    # Non-default platforms: the burst cadence (max(tCCD_S, tBL)), bank
    # geometry and turnarounds all differ from the DDR4-2400 values the
    # fast path was first built against.
    {"channels": 2, "ranks": 2, "mode": AccessMode.NDA_ONLY, "mix": None,
     "platform": "hbm2", "throttle": "issue_if_idle", "probability": 0.25,
     "opcode": NdaOpcode.DOT, "elements": 1 << 13, "warmup": 100},
    {"channels": 2, "ranks": 2, "mode": AccessMode.BANK_PARTITIONED,
     "mix": "mix1", "platform": "lpddr4-3200", "throttle": "next_rank",
     "probability": 0.25, "opcode": NdaOpcode.COPY, "elements": 1 << 13,
     "warmup": 50},
    {"channels": 2, "ranks": 4, "mode": AccessMode.NDA_ONLY, "mix": None,
     "platform": "ddr5-4800", "throttle": "issue_if_idle",
     "probability": 0.25, "opcode": NdaOpcode.SCAL, "elements": 1 << 13,
     "warmup": 0},
]


def _run_fuzz_spec(spec, cycles=700):
    mode = spec["mode"]

    def configure(system):
        if not mode.has_nda_traffic:
            return
        kwargs = {}
        if spec["opcode"] is NdaOpcode.GEMV:
            kwargs["matrix_columns"] = 64
        system.set_nda_workload(spec["opcode"],
                                elements_per_rank=spec["elements"],
                                **kwargs)

    _assert_equivalent(
        configure, mode,
        mix=spec["mix"] if mode.has_host_traffic else None,
        throttle=spec["throttle"],
        stochastic_probability=spec["probability"],
        config=resolve_config(spec.get("platform"),
                              spec["channels"], spec["ranks"]),
        cycles=cycles, warmup=spec["warmup"],
    )


class TestEngineEquivalenceFuzz:
    """Seeded random configurations: event == cycle, bit-exactly.

    The event engine runs with its default burst-issue fast path, so every
    case here is also a cycle == event == burst equivalence check.
    """

    @pytest.mark.parametrize("index", range(len(_FUZZ_CONFIGS)))
    def test_random_config(self, index):
        _run_fuzz_spec(_FUZZ_CONFIGS[index])

    @pytest.mark.parametrize("index", range(len(_BURST_CONFIGS)))
    def test_burst_heavy_config(self, index):
        _run_fuzz_spec(_BURST_CONFIGS[index], cycles=1200)

    def test_throttle_flip_mid_stream(self):
        """Swapping the write-throttle policy between run segments truncates
        live write bursts; results must stay engine-exact across the flip."""
        from repro.nda.throttle import make_policy
        from repro.utils.rng import DeterministicRng

        results = {}
        for engine, backend in _LEGS:
            system = _build(engine, AccessMode.BANK_PARTITIONED, mix="mix5",
                            throttle="issue_if_idle", backend=backend)
            system.set_nda_workload(NdaOpcode.COPY, elements_per_rank=1 << 13)
            system.run(cycles=600, warmup=100)
            # Flip every rank controller to next-rank prediction mid-stream
            # (the same policy object for all, as the system builds it).
            policy = make_policy("next_rank",
                                 rng=DeterministicRng(7, "flip"),
                                 host_controllers=system.channel_controllers)
            for controller in system.rank_controllers.values():
                controller.set_throttle(policy)
            results[(engine, backend)] = dataclasses.asdict(
                system.run(cycles=900))
        oracle = results[("cycle", "python")]
        for leg, result in results.items():
            assert result == oracle, f"{leg} diverged across throttle flip"


@requires_kernel
class TestKernelBackendCycleEngine:
    """The kernel backend under the *cycle* engine.

    The default backend axis above runs the kernel under the event engine
    (where its batched scan and vectorized settlement see the most traffic);
    these pin the orthogonality claim — the kernel timing/scan core is
    engine-agnostic — by running it under the per-cycle driver too, on the
    paper baseline and a non-default preset.
    """

    _CYCLE_LEGS = [("cycle", "python"), ("cycle", "kernel")]

    def test_bank_partitioned_baseline(self):
        def configure(system):
            system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 12)
        _assert_equivalent(configure, AccessMode.BANK_PARTITIONED, mix="mix1",
                           legs=self._CYCLE_LEGS)

    def test_shared_on_platform_preset(self):
        def configure(system):
            system.set_nda_workload(NdaOpcode.AXPY, elements_per_rank=1 << 12)
        _assert_equivalent(configure, AccessMode.SHARED, mix="mix5",
                           config=resolve_config("ddr5-4800"),
                           legs=self._CYCLE_LEGS, cycles=1000, warmup=100)

    def test_host_only_refresh_horizon(self):
        """Long enough to cross tREFI: pins the vectorized REF scatter."""
        _assert_equivalent(None, AccessMode.HOST_ONLY, mix="mix1",
                           legs=self._CYCLE_LEGS, cycles=12000, warmup=0)


class TestEngineBehaviour:
    def test_event_engine_skips_cycles_when_idle(self):
        system = ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8",
                              engine="event")
        system.run(cycles=1500, warmup=0)
        assert system.engine.cycles_skipped > 0
        assert (system.engine.cycles_processed
                + system.engine.cycles_skipped) == 1500

    def test_cycle_engine_processes_every_cycle(self):
        system = ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8",
                              engine="cycle")
        system.run(cycles=500, warmup=0)
        assert system.engine.cycles_processed == 500

    def test_step_interoperates_with_run(self):
        """Manual step() driving (runtime API style) must stay coherent."""
        results = {}
        for engine in ("cycle", "event"):
            system = ChopimSystem(mode=AccessMode.NDA_ONLY, engine=engine)
            system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 10)
            for _ in range(200):
                system.step()
            results[engine] = dataclasses.asdict(system.run(cycles=800))
        assert results["cycle"] == results["event"]

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8",
                         engine="warp")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8",
                         backend="fortran")
