"""Tests for the DDR4 timing engine and command/bank state machines."""

import pytest

from repro.config import DramOrgConfig, DramTimingConfig
from repro.dram.bank import Bank, BankState
from repro.dram.commands import Command, CommandType, DramAddress, RequestSource
from repro.dram.device import DramSystem
from repro.dram.timing import TimingEngine

T = DramTimingConfig()


def addr(channel=0, rank=0, bg=0, bank=0, row=0, col=0) -> DramAddress:
    return DramAddress(channel, rank, bg, bank, row, col)


def host(kind, a) -> Command:
    return Command(kind, a, RequestSource.HOST)


def nda(kind, a) -> Command:
    return Command(kind, a, RequestSource.NDA)


@pytest.fixture
def engine(org):
    return TimingEngine(org, T)


@pytest.fixture
def dram(org):
    return DramSystem(org, T)


class TestCommandTypes:
    def test_column_classification(self):
        assert CommandType.RD.is_column and CommandType.WR.is_column
        assert not CommandType.ACT.is_column
        assert CommandType.ACT.is_row and CommandType.PRE.is_row
        assert not CommandType.RD.is_row

    def test_dram_address_flat_bank(self):
        assert addr(bg=2, bank=3).flat_bank == 11

    def test_dram_address_same_bank(self):
        assert addr(row=1).same_bank(addr(row=9))
        assert not addr(bank=1).same_bank(addr(bank=2))

    def test_with_helpers(self):
        a = addr(row=5, col=3)
        assert a.with_column(7).column == 7
        assert a.with_row(9).row == 9


class TestBankStateMachine:
    def test_activate_then_precharge(self):
        bank = Bank(0, 0, 0, 0)
        assert bank.state is BankState.CLOSED
        bank.activate(42)
        assert bank.is_open(42)
        assert not bank.is_open(43)
        bank.precharge()
        assert bank.state is BankState.CLOSED

    def test_double_activate_rejected(self):
        bank = Bank(0, 0, 0, 0)
        bank.activate(1)
        with pytest.raises(ValueError):
            bank.activate(2)

    def test_classify_access(self):
        bank = Bank(0, 0, 0, 0)
        assert bank.classify_access(5) == "miss"
        bank.activate(5)
        assert bank.classify_access(5) == "hit"
        assert bank.classify_access(6) == "conflict"

    def test_record_column_counts(self):
        bank = Bank(0, 0, 0, 0)
        bank.activate(1)
        bank.record_column(1, is_write=False, is_nda=False, outcome="hit")
        bank.record_column(1, is_write=True, is_nda=True, outcome="conflict")
        assert bank.row_hits == 1 and bank.row_conflicts == 1
        assert bank.reads == 1 and bank.nda_writes == 1
        assert bank.total_accesses == 2
        assert bank.row_hit_rate() == pytest.approx(0.5)

    def test_record_column_rejects_bad_outcome(self):
        bank = Bank(0, 0, 0, 0)
        with pytest.raises(ValueError):
            bank.record_column(1, False, False, "bogus")


class TestActivationTiming:
    def test_trcd_enforced(self, engine):
        a = addr(row=1)
        engine.issue(host(CommandType.ACT, a), 0)
        rd = host(CommandType.RD, a)
        assert not engine.can_issue(rd, T.tRCD - 1)
        assert engine.can_issue(rd, T.tRCD)

    def test_tras_and_trp_enforced(self, engine):
        a = addr(row=1)
        engine.issue(host(CommandType.ACT, a), 0)
        pre = host(CommandType.PRE, a)
        assert not engine.can_issue(pre, T.tRAS - 1)
        assert engine.can_issue(pre, T.tRAS)
        engine.issue(pre, T.tRAS)
        act = host(CommandType.ACT, a)
        assert not engine.can_issue(act, T.tRAS + T.tRP - 1)
        assert engine.can_issue(act, max(T.tRAS + T.tRP, T.tRC))

    def test_trc_same_bank(self, engine):
        a = addr(row=1)
        engine.issue(host(CommandType.ACT, a), 0)
        engine.issue(host(CommandType.PRE, a), T.tRAS)
        act = host(CommandType.ACT, addr(row=2))
        assert engine.earliest_issue(act, 0) >= T.tRC

    def test_trrd_across_banks(self, engine):
        engine.issue(host(CommandType.ACT, addr(bg=0, bank=0, row=1)), 0)
        same_bg = host(CommandType.ACT, addr(bg=0, bank=1, row=1))
        diff_bg = host(CommandType.ACT, addr(bg=1, bank=0, row=1))
        assert engine.earliest_issue(same_bg, 0) == T.tRRDL
        assert engine.earliest_issue(diff_bg, 0) == T.tRRDS

    def test_faw_limits_fifth_activate(self, engine):
        # Four activates to different bank groups at the RRD_S rate.
        t = 0
        for bank_group in range(4):
            cmd = host(CommandType.ACT, addr(bg=bank_group, bank=0, row=1))
            t = engine.earliest_issue(cmd, t)
            engine.issue(cmd, t)
        fifth = host(CommandType.ACT, addr(bg=0, bank=1, row=1))
        first_act_time = 0
        assert engine.earliest_issue(fifth, t) >= first_act_time + T.tFAW


class TestColumnTiming:
    def _open(self, engine, a, now=0):
        engine.issue(host(CommandType.ACT, a), now)
        return now + T.tRCD

    def test_read_to_read_same_bank_group_uses_ccdl(self, engine):
        a = addr(row=1)
        ready = self._open(engine, a)
        engine.issue(host(CommandType.RD, a), ready)
        nxt = host(CommandType.RD, a.with_column(1))
        assert engine.earliest_issue(nxt, ready) == ready + T.tCCDL

    def test_read_to_read_diff_bank_group_uses_ccds(self, engine):
        a = addr(bg=0, row=1)
        b = addr(bg=1, row=1)
        ra = self._open(engine, a)
        rb = self._open(engine, b, 4)
        start = max(ra, rb)
        engine.issue(host(CommandType.RD, a), start)
        nxt = host(CommandType.RD, b)
        assert engine.earliest_issue(nxt, start) == start + T.tCCDS

    def test_write_to_read_turnaround_same_rank(self, engine):
        a = addr(bg=0, row=1)
        ready = self._open(engine, a)
        engine.issue(host(CommandType.WR, a), ready)
        rd = host(CommandType.RD, a.with_column(1))
        assert (engine.earliest_issue(rd, ready)
                == ready + T.tCWL + T.tBL + T.tWTRL)

    def test_write_to_read_smaller_penalty_across_bank_groups(self, engine):
        a = addr(bg=0, row=1)
        b = addr(bg=1, row=1)
        ra = self._open(engine, a)
        rb = self._open(engine, b, 4)
        start = max(ra, rb)
        engine.issue(host(CommandType.WR, a), start)
        rd_same = host(CommandType.RD, a.with_column(1))
        rd_diff = host(CommandType.RD, b)
        assert (engine.earliest_issue(rd_diff, start)
                < engine.earliest_issue(rd_same, start))

    def test_read_to_write_penalty_smaller_than_write_to_read(self, engine):
        a = addr(bg=0, row=1)
        ready = self._open(engine, a)
        engine.issue(host(CommandType.RD, a), ready)
        wr_after_rd = engine.earliest_issue(host(CommandType.WR, a.with_column(1)), ready) - ready

        engine2 = TimingEngine(DramOrgConfig(), T)
        ready2 = T.tRCD
        engine2.issue(host(CommandType.ACT, a), 0)
        engine2.issue(host(CommandType.WR, a), ready2)
        rd_after_wr = engine2.earliest_issue(host(CommandType.RD, a.with_column(1)), ready2) - ready2
        assert rd_after_wr > wr_after_rd

    def test_rank_to_rank_switch_penalty_on_channel(self, engine):
        a = addr(rank=0, row=1)
        b = addr(rank=1, row=1)
        ra = self._open(engine, a)
        engine.issue(host(CommandType.ACT, b), 1)
        start = max(ra, 1 + T.tRCD)
        engine.issue(host(CommandType.RD, a), start)
        same_rank = engine.earliest_issue(host(CommandType.RD, a.with_column(1)), start)
        other_rank = engine.earliest_issue(host(CommandType.RD, b), start)
        assert other_rank >= same_rank - T.tCCDL + T.tBL + T.tRTRS - 1

    def test_read_to_precharge(self, engine):
        a = addr(row=1)
        ready = self._open(engine, a)
        engine.issue(host(CommandType.RD, a), ready)
        pre = host(CommandType.PRE, a)
        assert engine.earliest_issue(pre, ready) >= ready + T.tRTP

    def test_write_recovery_before_precharge(self, engine):
        a = addr(row=1)
        ready = self._open(engine, a)
        engine.issue(host(CommandType.WR, a), ready)
        pre = host(CommandType.PRE, a)
        assert engine.earliest_issue(pre, ready) >= ready + T.tCWL + T.tBL + T.tWR


class TestNdaHostInteraction:
    def test_nda_does_not_occupy_channel_bus(self, engine):
        """An NDA read on rank 0 must not delay a host read on rank 1."""
        a = addr(rank=0, row=1)
        b = addr(rank=1, row=1)
        engine.issue(nda(CommandType.ACT, a), 0)
        engine.issue(host(CommandType.ACT, b), 1)
        start = 1 + T.tRCD
        engine.issue(nda(CommandType.RD, a), T.tRCD)
        host_rd = host(CommandType.RD, b)
        assert engine.earliest_issue(host_rd, start) == start

    def test_nda_write_causes_wtr_for_host_read_same_rank(self, engine):
        """The central interference mechanism of Section III-B."""
        a = addr(rank=0, bg=0, row=1)
        b = addr(rank=0, bg=1, row=2)
        engine.issue(nda(CommandType.ACT, a), 0)
        engine.issue(host(CommandType.ACT, b), 1)
        start = 1 + T.tRCD
        engine.issue(nda(CommandType.WR, a), start)
        host_rd = host(CommandType.RD, b)
        assert engine.earliest_issue(host_rd, start) >= start + T.tCWL + T.tBL + T.tWTRS

    def test_nda_columns_paced_at_ccds_within_bank_group(self, engine):
        a = addr(rank=0, bg=0, row=1)
        engine.issue(nda(CommandType.ACT, a), 0)
        engine.issue(nda(CommandType.RD, a), T.tRCD)
        nxt = nda(CommandType.RD, a.with_column(1))
        assert engine.earliest_issue(nxt, T.tRCD) == T.tRCD + T.tCCDS

    def test_rank_host_busy_tracks_host_data(self, engine):
        a = addr(rank=0, row=1)
        engine.issue(host(CommandType.ACT, a), 0)
        engine.issue(host(CommandType.RD, a), T.tRCD)
        # Busy during the command cycle and during the data burst; the CAS
        # gap in between is a short idle window the NDAs may exploit.
        assert engine.rank_host_busy(0, 0, T.tRCD)
        assert not engine.rank_host_busy(0, 0, T.tRCD + 2)
        assert engine.rank_host_busy(0, 0, T.tRCD + T.tCL + 1)
        assert not engine.rank_host_busy(0, 0, T.tRCD + T.tCL + T.tBL + 1)

    def test_nda_access_does_not_mark_rank_host_busy(self, engine):
        a = addr(rank=0, row=1)
        engine.issue(nda(CommandType.ACT, a), 0)
        engine.issue(nda(CommandType.RD, a), T.tRCD)
        assert not engine.rank_host_busy(0, 0, T.tRCD + 1)


class TestRefresh:
    def test_refresh_due_after_trefi(self, engine):
        assert not engine.refresh_due(0, 0, 0)
        assert engine.refresh_due(0, 0, T.tREFI)

    def test_refresh_blocks_bank_for_trfc(self, dram):
        a = addr(row=0)
        ref = host(CommandType.REF, a)
        dram.issue(ref, 0)
        act = host(CommandType.ACT, addr(row=1))
        assert not dram.can_issue(act, T.tRFC - 1)
        assert dram.can_issue(act, T.tRFC)

    def test_refresh_urgency(self, engine):
        assert engine.refresh_urgency(0, 0, 0) == 0.0
        assert engine.refresh_urgency(0, 0, T.tREFI * 2) > 0.0


class TestDramSystemFacade:
    def test_required_command_progression(self, dram):
        a = addr(row=3)
        assert dram.required_command(a, False) is CommandType.ACT
        dram.issue(host(CommandType.ACT, a), 0)
        assert dram.required_command(a, False) is CommandType.RD
        assert dram.required_command(a.with_row(4), False) is CommandType.PRE

    def test_illegal_command_raises(self, dram):
        a = addr(row=3)
        with pytest.raises(ValueError):
            dram.issue(host(CommandType.RD, a), 0)  # bank closed

    def test_event_counts(self, dram):
        a = addr(row=3)
        dram.issue(host(CommandType.ACT, a), 0)
        dram.issue(host(CommandType.RD, a), T.tRCD)
        dram.issue(nda(CommandType.WR, a.with_column(1)), T.tRCD + T.tCCDL + 20)
        assert dram.counts.activates == 1
        assert dram.counts.host_reads == 1
        assert dram.counts.nda_writes == 1
        assert dram.counts.host_columns == 1
        assert dram.counts.nda_columns == 1

    def test_record_access_outcome(self, dram):
        a = addr(row=3)
        assert dram.record_access_outcome(a, False, is_nda=False) == "miss"
        dram.issue(host(CommandType.ACT, a), 0)
        assert dram.record_access_outcome(a, False, is_nda=False) == "hit"
        assert dram.record_access_outcome(a.with_row(9), False, is_nda=True) == "conflict"
        assert dram.counts.host_row_hits == 1
        assert dram.counts.nda_row_conflicts == 1

    def test_latencies(self, dram):
        assert dram.read_latency() == T.tCL + T.tBL
        assert dram.write_latency() == T.tCWL + T.tBL

    def test_conflict_counts_aggregate(self, dram):
        a = addr(row=3)
        dram.record_access_outcome(a, False, is_nda=False)
        totals = dram.conflict_counts()
        assert totals["row_misses"] == 1
