"""Tests for the parallel sweep runner and its result cache."""

import json

import pytest

from repro.experiments import sweep
from repro.experiments.sweep import SweepCache, SweepTask, run_sweep


def _double(value: int, offset: int = 0) -> dict:
    return {"value": value, "result": value * 2 + offset}


def _bad_point(value: int) -> list:
    return [value]


class TestRunSweep:
    def test_rows_in_parameter_order(self):
        rows = run_sweep(_double, [{"value": v} for v in (3, 1, 2)])
        assert [r["value"] for r in rows] == [3, 1, 2]
        assert [r["result"] for r in rows] == [6, 2, 4]

    def test_empty_sweep(self):
        assert run_sweep(_double, []) == []

    def test_non_dict_row_rejected(self):
        # Strict mode (the default) surfaces the bad row as a sweep failure
        # carrying the original TypeError diagnosis.
        with pytest.raises(sweep.SweepPointsFailed) as excinfo:
            run_sweep(_bad_point, [{"value": 1}],
                      options=sweep.SweepOptions(max_retries=0))
        failure = excinfo.value.outcome.failures[0]
        assert failure.error_type == "TypeError"
        assert "must return a dict row" in failure.message

    def test_explicit_process_count(self):
        rows = run_sweep(_double, [{"value": v} for v in range(4)],
                         processes=2)
        assert [r["result"] for r in rows] == [0, 2, 4, 6]

    def test_serial_matches_parallel(self):
        params = [{"value": v} for v in range(6)]
        assert (run_sweep(_double, params, processes=1)
                == run_sweep(_double, params, processes=3))


class TestSweepCache:
    def test_cache_round_trip(self, tmp_path):
        params = [{"value": v} for v in (1, 2)]
        first = run_sweep(_double, params, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 2
        second = run_sweep(_double, params, cache_dir=tmp_path)
        assert first == second

    def test_cache_replays_without_recompute(self, tmp_path):
        params = [{"value": 7}]
        run_sweep(_double, params, cache_dir=tmp_path)
        # Poison the cached row; a replay must return the poisoned value,
        # proving the point function was not re-invoked.
        path = next(tmp_path.glob("*.json"))
        entry = json.loads(path.read_text())
        entry["row"]["result"] = 999
        path.write_text(json.dumps(entry))
        rows = run_sweep(_double, params, cache_dir=tmp_path)
        assert rows[0]["result"] == 999

    def test_cache_key_distinguishes_params(self, tmp_path):
        run_sweep(_double, [{"value": 1}], cache_dir=tmp_path)
        rows = run_sweep(_double, [{"value": 2}], cache_dir=tmp_path)
        assert rows[0]["result"] == 4
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_cache_key_distinguishes_functions(self):
        task_a = SweepTask("m", "f", {"value": 1})
        task_b = SweepTask("m", "g", {"value": 1})
        assert task_a.cache_key() != task_b.cache_key()

    def test_cache_key_distinguishes_platform_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLATFORM", raising=False)
        default = SweepTask("m", "f", {"value": 1}).cache_key()
        monkeypatch.setenv("REPRO_PLATFORM", "hbm2")
        retargeted = SweepTask("m", "f", {"value": 1}).cache_key()
        assert default != retargeted

    def test_cache_key_distinguishes_backend_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        default = SweepTask("m", "f", {"value": 1}).cache_key()
        monkeypatch.setenv("REPRO_BACKEND", "kernel")
        kernel = SweepTask("m", "f", {"value": 1}).cache_key()
        assert default != kernel

    def test_cache_key_distinguishes_code_version(self):
        base = SweepTask("m", "f", {"value": 1})
        edited = SweepTask("m", "f", {"value": 1},
                           code="different-fingerprint")
        assert base.cache_key() != edited.cache_key()
        assert base.code == sweep.code_fingerprint()

    def test_stale_rows_not_replayed_across_environment(self, tmp_path,
                                                        monkeypatch):
        # A row cached under one platform/backend must not satisfy a sweep
        # run under another: the same params hash to a different key.
        monkeypatch.delenv("REPRO_PLATFORM", raising=False)
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        run_sweep(_double, [{"value": 4}], cache_dir=tmp_path)
        assert len(list(tmp_path.glob("*.json"))) == 1
        monkeypatch.setenv("REPRO_PLATFORM", "ddr5-4800")
        rows = run_sweep(_double, [{"value": 4}], cache_dir=tmp_path)
        assert rows[0]["result"] == 8
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        cache = SweepCache(tmp_path)
        task = SweepTask(_double.__module__, _double.__qualname__,
                         {"value": 3})
        (tmp_path / f"{task.cache_key()}.json").write_text("{not json")
        assert cache.load(task) is None
        rows = run_sweep(_double, [{"value": 3}], cache_dir=tmp_path)
        assert rows[0]["result"] == 6

    def test_env_var_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(sweep.CACHE_ENV_VAR, raising=False)
        assert sweep.default_cache_dir() is None
        monkeypatch.setenv(sweep.CACHE_ENV_VAR, "")
        assert sweep.default_cache_dir() is None

    def test_env_var_enables_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv(sweep.CACHE_ENV_VAR, str(tmp_path))
        run_sweep(_double, [{"value": 5}])
        assert len(list(tmp_path.glob("*.json"))) == 1


class TestFigureRouting:
    """The figure entry points route through the sweep runner with caching."""

    def test_fig14_rows_cached(self, tmp_path):
        from repro.experiments.fig14_scaling import run_scalability_comparison
        kwargs = dict(rank_configs=[(2, 2)], workloads=["dot"],
                      cycles=400, warmup=40, elements_per_rank=1 << 10,
                      cache_dir=tmp_path)
        first = run_scalability_comparison(**kwargs)
        second = run_scalability_comparison(**kwargs)
        assert first == second
        assert len(first) == 2  # chopim + rank partitioning
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_fig02_routing(self):
        from repro.experiments.fig02_idle import run_idle_histogram
        rows = run_idle_histogram(mixes=["mix8"], cycles=400, warmup=40)
        assert len(rows) == 1 and rows[0]["mix"] == "mix8"
