"""Tests for the Chopim runtime: allocation, the array API and async streams."""

import numpy as np
import pytest

from repro.addressing.bank_partition import BankPartitionMapping
from repro.addressing.mapping import skylake_mapping
from repro.config import DramOrgConfig
from repro.core.modes import AccessMode
from repro.runtime.allocator import RuntimeAllocator
from repro.runtime.api import ChopimRuntime, ColorMismatchError
from repro.runtime.stream import MacroOperation

ORG = DramOrgConfig()
FRAME = ORG.system_row_bytes


@pytest.fixture(scope="module")
def runtime():
    """A shared runtime on a low-intensity mix (module-scoped: building the
    system is the expensive part, and API calls are independent)."""
    return ChopimRuntime(mode=AccessMode.BANK_PARTITIONED, mix="mix8")


class TestRuntimeAllocator:
    def test_heap_in_shared_region_with_bank_partitioning(self):
        mapping = BankPartitionMapping(ORG, 1)
        allocator = RuntimeAllocator.for_mapping(mapping, FRAME)
        region = allocator.create_region(4 * FRAME)
        for frame in region.frames:
            assert mapping.is_shared_address(frame)

    def test_heap_at_top_of_memory_without_partitioning(self):
        mapping = skylake_mapping(ORG)
        allocator = RuntimeAllocator.for_mapping(mapping, FRAME)
        region = allocator.create_region(2 * FRAME)
        assert all(f >= mapping.capacity_bytes * 0.5 for f in region.frames)

    def test_regions_have_one_color(self):
        mapping = skylake_mapping(ORG)
        allocator = RuntimeAllocator.for_mapping(mapping, FRAME)
        region = allocator.create_region(8 * FRAME)
        colors = {allocator.frame_allocator.color_of(f) for f in region.frames}
        assert len(colors) == 1
        assert region.color in colors

    def test_region_reserve_alignment_and_exhaustion(self):
        mapping = skylake_mapping(ORG)
        allocator = RuntimeAllocator.for_mapping(mapping, FRAME)
        region = allocator.create_region(2 * FRAME)
        a = region.reserve(100, alignment=FRAME)
        b = region.reserve(100, alignment=FRAME)
        assert (b - a) % FRAME == 0
        with pytest.raises(MemoryError):
            region.reserve(8 * FRAME, alignment=FRAME)

    def test_translation_round_trip(self):
        mapping = skylake_mapping(ORG)
        allocator = RuntimeAllocator.for_mapping(mapping, FRAME)
        region = allocator.create_region(2 * FRAME)
        phys = allocator.translate(region.virtual_base)
        assert phys == region.frames[0]
        extents = allocator.physical_extents(region.virtual_base, 2 * FRAME)
        assert sum(length for _, length in extents) == 2 * FRAME

    def test_same_color_check(self):
        mapping = skylake_mapping(ORG)
        allocator = RuntimeAllocator.for_mapping(mapping, FRAME)
        color = allocator.available_colors()[0]
        r1 = allocator.create_region(FRAME, color)
        r2 = allocator.create_region(FRAME, color)
        assert allocator.same_color([r1, r2])


class TestNdaArrayApi:
    def test_vector_and_matrix_allocation(self, runtime):
        v = runtime.vector(1024)
        m = runtime.matrix(16, 64)
        assert v.length == 1024
        assert (m.rows, m.cols) == (16, 64)
        assert v.nbytes == 4096
        assert v.region is not None and v.color == m.color or True

    def test_private_vector_has_no_region(self, runtime):
        p = runtime.vector(64, private=True)
        assert p.private and p.region is None

    def test_copy_and_scal(self, runtime):
        x = runtime.vector(512, init=np.arange(512))
        y = runtime.vector(512)
        runtime.copy(y, x)
        assert np.allclose(y.numpy(), x.numpy())
        runtime.scal(x, 2.0)
        assert np.allclose(x.numpy(), 2.0 * np.arange(512, dtype=np.float32))

    def test_axpy_family(self, runtime):
        x = runtime.vector(256, init=np.ones(256))
        y = runtime.vector(256, init=np.full(256, 2.0))
        z = runtime.vector(256)
        w = runtime.vector(256)
        runtime.axpy(y, 3.0, x)
        assert np.allclose(y.numpy(), 5.0)
        runtime.axpby(z, 2.0, x, 1.0, y)
        assert np.allclose(z.numpy(), 7.0)
        runtime.axpbypcz(w, 1.0, x, 1.0, y, 1.0, z)
        assert np.allclose(w.numpy(), 13.0)

    def test_reductions_and_xmy(self, runtime):
        x = runtime.vector(128, init=np.full(128, 2.0))
        y = runtime.vector(128, init=np.full(128, 3.0))
        z = runtime.vector(128)
        assert runtime.dot(x, y) == pytest.approx(128 * 6.0)
        assert runtime.nrm2(x) == pytest.approx(np.sqrt(128 * 4.0))
        runtime.xmy(z, x, y)
        assert np.allclose(z.numpy(), 6.0)

    def test_gemv(self, runtime):
        a = runtime.matrix(8, 32, init=np.ones((8, 32)))
        x = runtime.vector(32, init=np.arange(32))
        y = runtime.vector(8)
        runtime.gemv(y, a, x)
        assert np.allclose(y.numpy(), np.arange(32).sum())

    def test_host_helpers(self, runtime):
        src = runtime.vector(16, init=np.zeros(16))
        dst = runtime.vector(16)
        runtime.host_sigmoid(dst, src)
        assert np.allclose(dst.numpy(), 0.5)
        private = runtime.vector(16, private=True, init=np.ones(16))
        runtime.host_reduce(dst, private)
        assert np.allclose(dst.numpy(), 1.0)

    def test_operations_advance_the_simulator(self, runtime):
        before = runtime.system.now
        x = runtime.vector(2048, init=np.ones(2048))
        y = runtime.vector(2048)
        runtime.copy(y, x)
        assert runtime.system.now > before
        assert runtime.system.dram.counts.nda_columns > 0

    def test_color_mismatch_inserts_copy(self):
        rt = ChopimRuntime(mode=AccessMode.BANK_PARTITIONED, mix="mix8")
        colors = rt.allocator.available_colors()
        if len(colors) < 2:
            pytest.skip("geometry exposes a single color")
        r1 = rt.shared_region(2 * FRAME, colors[0])
        r2 = rt.shared_region(2 * FRAME, colors[1])
        x = rt.vector(128, region=r1)
        y = rt.vector(128, region=r2)
        rt.copy(y, x)
        assert rt.copies_inserted >= 1

    def test_color_mismatch_raises_when_auto_copy_disabled(self):
        rt = ChopimRuntime(mode=AccessMode.BANK_PARTITIONED, mix="mix8",
                           auto_copy_on_color_mismatch=False)
        colors = rt.allocator.available_colors()
        if len(colors) < 2:
            pytest.skip("geometry exposes a single color")
        x = rt.vector(128, region=rt.shared_region(2 * FRAME, colors[0]))
        y = rt.vector(128, region=rt.shared_region(2 * FRAME, colors[1]))
        with pytest.raises(ColorMismatchError):
            rt.copy(y, x)

    def test_run_until_timeout(self, runtime):
        with pytest.raises(TimeoutError):
            runtime.run_until(lambda: False, max_cycles=50)


class TestAsyncAndMacro:
    def test_macro_operation_barrier(self):
        rt = ChopimRuntime(mode=AccessMode.BANK_PARTITIONED, mix="mix8")
        y = rt.vector(256, private=True)
        macro = rt.macro("avg_gradient")
        rows = np.ones((4, 256), dtype=np.float32)
        for i in range(4):
            rt.axpy_macro(macro, y, 0.5, rows[i])
        assert macro.launched == 4
        rt.macro_wait(macro)
        assert macro.done
        assert macro.completion_cycle() is not None
        assert np.allclose(y.numpy(), 2.0)

    def test_stream_synchronize(self):
        rt = ChopimRuntime(mode=AccessMode.BANK_PARTITIONED, mix="mix8")
        stream = rt.stream("s0")
        x = rt.vector(512, init=np.ones(512))
        y = rt.vector(512)
        stream.append(rt.copy(y, x, blocking=False, async_launch=True))
        stream.append(rt.scal(x, 2.0, blocking=False, async_launch=True))
        assert stream.pending >= 0
        stream.synchronize()
        assert stream.done
        stream.clear_completed()
        assert stream.pending == 0

    def test_macro_empty_is_done(self):
        macro = MacroOperation("empty")
        assert macro.done
        assert macro.completion_cycle() is None
