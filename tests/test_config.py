"""Tests for the Table II configuration objects."""

import dataclasses

import pytest

from repro.config import (
    DramOrgConfig,
    DramTimingConfig,
    EnergyConfig,
    HostConfig,
    NdaConfig,
    SystemConfig,
    default_config,
    scaled_config,
)


class TestDramTimingConfig:
    def test_table_ii_values(self):
        t = DramTimingConfig()
        assert t.tBL == 4
        assert t.tCCDS == 4
        assert t.tCCDL == 6
        assert t.tRTRS == 2
        assert t.tCL == 16
        assert t.tRCD == 16
        assert t.tRP == 16
        assert t.tCWL == 12
        assert t.tRAS == 39
        assert t.tRC == 55
        assert t.tRTP == 9
        assert t.tWTRS == 3
        assert t.tWTRL == 9
        assert t.tWR == 18
        assert t.tRRDS == 4
        assert t.tRRDL == 6
        assert t.tFAW == 26

    def test_derived_write_to_read_turnaround(self):
        t = DramTimingConfig()
        assert t.write_to_read_same_rank_same_bg == t.tCWL + t.tBL + t.tWTRL
        assert t.write_to_read_same_rank_diff_bg == t.tCWL + t.tBL + t.tWTRS
        # The write-to-read penalty is larger than the read-to-write penalty
        # (the asymmetry motivating NDA write throttling in Section III-B).
        assert t.write_to_read_same_rank_same_bg > t.read_to_write

    def test_validate_accepts_defaults(self):
        DramTimingConfig().validate()

    def test_validate_rejects_negative(self):
        with pytest.raises(ValueError):
            dataclasses.replace(DramTimingConfig(), tCL=0).validate()

    def test_validate_rejects_inconsistent_trc(self):
        with pytest.raises(ValueError):
            dataclasses.replace(DramTimingConfig(), tRC=10).validate()

    def test_validate_rejects_ccd_ordering(self):
        with pytest.raises(ValueError):
            dataclasses.replace(DramTimingConfig(), tCCDL=2).validate()


class TestDramOrgConfig:
    def test_default_geometry(self):
        org = DramOrgConfig()
        assert org.channels == 2
        assert org.ranks_per_channel == 2
        assert org.banks_per_rank == 16
        assert org.row_bytes == 8 * 1024
        assert org.cachelines_per_row == 128
        assert org.total_ranks == 4

    def test_capacity_is_product_of_geometry(self):
        org = DramOrgConfig()
        expected = (org.channels * org.ranks_per_channel * org.banks_per_rank
                    * org.rows_per_bank * org.row_bytes)
        assert org.total_bytes == expected

    def test_system_row_is_2mib_for_default_geometry(self):
        org = DramOrgConfig()
        # One row from every bank in the system: 8 KiB * 16 banks * 4 ranks.
        assert org.system_row_bytes == 8 * 1024 * 16 * 4

    def test_peak_bandwidths(self):
        org = DramOrgConfig()
        assert org.peak_channel_bandwidth_gbs == pytest.approx(19.2)
        assert org.peak_host_bandwidth_gbs == pytest.approx(38.4)

    def test_validate_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            dataclasses.replace(DramOrgConfig(), rows_per_bank=100).validate()

    def test_validate_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            dataclasses.replace(DramOrgConfig(), channels=0).validate()


class TestHostAndNdaConfig:
    def test_host_defaults_match_table_ii(self):
        host = HostConfig()
        assert host.cores == 4
        assert host.cpu_clock_ghz == 4.0
        assert host.rob_entries == 224
        assert host.lsq_entries == 64
        assert host.fetch_width == 8

    def test_clock_ratio(self):
        assert HostConfig().cycles_per_dram_cycle == pytest.approx(4.0 / 1.2)

    def test_clock_ratio_derives_from_dram_clock(self):
        faster = dataclasses.replace(HostConfig(), dram_clock_ghz=2.4)
        assert faster.cycles_per_dram_cycle == pytest.approx(4.0 / 2.4)

    def test_system_config_syncs_host_clock_to_organization(self):
        org = dataclasses.replace(DramOrgConfig(), dram_clock_ghz=1.6)
        cfg = SystemConfig(org=org)
        assert cfg.host.dram_clock_ghz == 1.6
        assert cfg.host.cycles_per_dram_cycle == pytest.approx(4.0 / 1.6)

    def test_nda_defaults_match_table_ii(self):
        nda = NdaConfig()
        assert nda.pe_clock_ghz == 1.2
        assert nda.write_buffer_entries == 128
        assert nda.fpfma_per_pe == 2
        assert nda.buffer_bytes == 1024
        assert nda.scratchpad_bytes == 1024

    def test_energy_defaults_match_table_ii(self):
        e = EnergyConfig()
        assert e.activate_nj == 1.0
        assert e.pe_access_pj_per_bit == 11.3
        assert e.host_access_pj_per_bit == 25.7
        assert e.pe_fma_pj_per_op == 20.0
        assert e.pe_buffer_leakage_mw == 11.0

    def test_energy_per_cacheline(self):
        e = EnergyConfig()
        assert e.host_access_nj(64) == pytest.approx(25.7 * 64 * 8 / 1000.0)
        assert e.pe_access_nj(64) < e.host_access_nj(64)


class TestSystemConfig:
    def test_default_config_validates(self):
        default_config().validate()

    def test_with_ranks_returns_new_config(self):
        cfg = default_config()
        scaled = cfg.with_ranks(2, 8)
        assert scaled.org.ranks_per_channel == 8
        assert cfg.org.ranks_per_channel == 2  # original untouched

    def test_with_cores(self):
        cfg = default_config().with_cores(8)
        assert cfg.host.cores == 8

    def test_scaled_config(self):
        cfg = scaled_config(2, 4, cores=8)
        assert cfg.org.ranks_per_channel == 4
        assert cfg.host.cores == 8

    def test_invalid_shared_banks_rejected(self):
        cfg = default_config()
        cfg.shared_banks_per_rank = 99
        with pytest.raises(ValueError):
            cfg.validate()
