"""Tests for the application workloads: datasets, SVRG, CG, streamcluster."""

import numpy as np
import pytest

from repro.apps.cg import ConjugateGradientSolver
from repro.apps.datasets import make_dataset
from repro.apps.streamcluster import StreamClusterer
from repro.apps.svrg import SvrgConfig, SvrgTimingModel, SvrgTrainer, SvrgVariant
from repro.apps.workloads import (
    application_kernel_sequence,
    cg_kernel_sequence,
    streamcluster_kernel_sequence,
    svrg_kernel_sequence,
)
from repro.nda.isa import NdaOpcode, OPCODE_TRAITS


class TestDatasets:
    def test_shapes_and_types(self):
        ds = make_dataset(256, 32, classes=5)
        assert ds.features.shape == (256, 32)
        assert ds.labels.shape == (256,)
        assert ds.features.dtype == np.float32
        assert ds.classes == 5
        assert set(np.unique(ds.labels)) <= set(range(5))

    def test_one_hot(self):
        ds = make_dataset(64, 8, classes=3)
        oh = ds.one_hot()
        assert oh.shape == (64, 3)
        assert np.all(oh.sum(axis=1) == 1)

    def test_deterministic_given_seed(self):
        a = make_dataset(64, 8, seed=3)
        b = make_dataset(64, 8, seed=3)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_split(self):
        ds = make_dataset(100, 8)
        train, val = ds.split(0.8)
        assert train.num_samples == 80 and val.num_samples == 20
        with pytest.raises(ValueError):
            ds.split(1.5)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            make_dataset(0, 8)
        with pytest.raises(ValueError):
            make_dataset(8, 8, classes=1)


@pytest.fixture(scope="module")
def small_trainer():
    dataset = make_dataset(512, 64, classes=4, seed=3)
    config = SvrgConfig(learning_rate=0.05, epoch_fraction=0.5, outer_iterations=6)
    return SvrgTrainer(dataset, config, SvrgTimingModel.analytic(4))


class TestSvrgMath:
    def test_full_gradient_matches_numerical_gradient(self, small_trainer):
        trainer = small_trainer
        w = np.zeros((trainer.num_features, trainer.num_classes))
        w[0, 0] = 0.1
        grad = trainer.full_gradient(w)
        eps = 1e-5
        for idx in [(0, 0), (3, 1), (10, 2)]:
            w_plus = w.copy()
            w_plus[idx] += eps
            w_minus = w.copy()
            w_minus[idx] -= eps
            numeric = (trainer.loss(w_plus) - trainer.loss(w_minus)) / (2 * eps)
            assert grad[idx] == pytest.approx(numeric, rel=1e-3, abs=1e-5)

    def test_sample_gradient_averages_to_full_gradient(self, small_trainer):
        trainer = small_trainer
        w = np.zeros((trainer.num_features, trainer.num_classes))
        sampled = np.mean([trainer.sample_gradient(w, i)
                           for i in range(trainer.dataset.num_samples)], axis=0)
        # The l2 term appears once per sample in sample_gradient and once in
        # full_gradient, so the averages agree exactly at any w.
        assert np.allclose(sampled, trainer.full_gradient(w), atol=1e-8)

    def test_loss_decreases_under_training(self, small_trainer):
        history = small_trainer.train(SvrgVariant.HOST_ONLY)
        assert history[-1].training_loss < history[0].training_loss
        assert history[-1].loss_gap < history[0].loss_gap

    def test_optimum_loss_below_initial_loss(self, small_trainer):
        w0 = np.zeros((small_trainer.num_features, small_trainer.num_classes))
        assert small_trainer.optimum_loss() < small_trainer.loss(w0)

    def test_wall_clock_monotonic(self, small_trainer):
        history = small_trainer.train(SvrgVariant.ACCELERATED)
        times = [p.wall_clock_seconds for p in history]
        assert all(b > a for a, b in zip(times, times[1:]))


class TestSvrgVariants:
    def test_accelerated_is_faster_per_epoch_than_host_only(self, small_trainer):
        host = small_trainer.train(SvrgVariant.HOST_ONLY, outer_iterations=4)
        acc = small_trainer.train(SvrgVariant.ACCELERATED, outer_iterations=4)
        assert acc[-1].wall_clock_seconds < host[-1].wall_clock_seconds

    def test_delayed_update_overlaps_and_is_fastest_per_epoch(self, small_trainer):
        acc = small_trainer.train(SvrgVariant.ACCELERATED, outer_iterations=4)
        delayed = small_trainer.train(SvrgVariant.DELAYED_UPDATE, outer_iterations=4)
        assert delayed[-1].wall_clock_seconds < acc[-1].wall_clock_seconds

    def test_more_ndas_speed_up_summarization(self):
        dataset = make_dataset(512, 64, classes=4, seed=3)
        config = SvrgConfig(learning_rate=0.05, outer_iterations=3)
        few = SvrgTrainer(dataset, config, SvrgTimingModel.analytic(4))
        many = SvrgTrainer(dataset, config, SvrgTimingModel.analytic(16))
        t_few = few.train(SvrgVariant.ACCELERATED)[-1].wall_clock_seconds
        t_many = many.train(SvrgVariant.ACCELERATED)[-1].wall_clock_seconds
        assert t_many < t_few

    def test_train_until_reaches_threshold(self, small_trainer):
        target = 0.2
        history = small_trainer.train_until(SvrgVariant.HOST_ONLY, target,
                                            max_outer_iterations=40)
        assert history[-1].loss_gap <= target
        assert SvrgTrainer.time_to_converge(history, target) is not None

    def test_time_to_converge_none_when_unreached(self, small_trainer):
        history = small_trainer.train(SvrgVariant.HOST_ONLY, outer_iterations=1)
        assert SvrgTrainer.time_to_converge(history, 1e-12) is None

    def test_timing_model_summarize_scales_with_bandwidth(self):
        model = SvrgTimingModel(host_stream_gbs=10.0, nda_stream_gbs=40.0)
        host = model.summarize_seconds(1 << 20, on_nda=False)
        nda = model.summarize_seconds(1 << 20, on_nda=True)
        assert nda == pytest.approx(host / 4)


class TestConjugateGradient:
    def test_solves_spd_system(self):
        solver = ConjugateGradientSolver.random_spd(96, seed=1)
        x, converged = solver.solve()
        assert converged
        assert solver.residual_norm(x) < 1e-6

    def test_residual_monotonically_reported(self):
        solver = ConjugateGradientSolver.random_spd(64)
        solver.solve()
        assert solver.history[0].residual_norm > solver.history[-1].residual_norm

    def test_operation_counts_per_iteration(self):
        solver = ConjugateGradientSolver.random_spd(64)
        solver.solve()
        iterations = len(solver.history) - 1
        assert solver.operation_counts["gemv"] == iterations + 1
        assert solver.operation_counts["dot"] >= 2 * iterations

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ConjugateGradientSolver(np.ones((3, 4)), np.ones(3))
        with pytest.raises(ValueError):
            ConjugateGradientSolver(np.ones((3, 3)), np.ones(4))
        nonsym = np.array([[1.0, 2.0], [0.0, 1.0]])
        with pytest.raises(ValueError):
            ConjugateGradientSolver(nonsym, np.ones(2))

    def test_write_intensity_between_dot_and_copy(self):
        solver = ConjugateGradientSolver.random_spd(64)
        wi = solver.write_intensity()
        assert OPCODE_TRAITS[NdaOpcode.DOT].write_intensity < wi
        assert wi < OPCODE_TRAITS[NdaOpcode.COPY].write_intensity


class TestStreamCluster:
    def test_clusters_synthetic_stream(self):
        sc = StreamClusterer(num_features=16, max_centers=16, seed=2)
        results = sc.run_stream(num_points=1024, chunk=256, num_clusters=4)
        assert len(results) == 4
        assert 1 <= results[-1].centers.shape[0] <= 16
        assert sc.points_processed == 1024

    def test_assignment_cost_reasonable(self):
        sc = StreamClusterer(num_features=8, max_centers=8, facility_cost=2.0, seed=1)
        stream = sc.make_stream(512, num_clusters=4, spread=0.1)
        result = sc.process_chunk(stream)
        # Tight clusters and enough centers: average assignment cost is small.
        assert result.cost / 512 < sc.facility_cost

    def test_center_count_respects_capacity(self):
        sc = StreamClusterer(num_features=8, max_centers=3, facility_cost=0.01)
        sc.run_stream(num_points=256, chunk=64, num_clusters=8)
        assert sc.centers.shape[0] <= 3

    def test_rejects_bad_dimensions(self):
        sc = StreamClusterer(num_features=8)
        with pytest.raises(ValueError):
            sc.process_chunk(np.ones((4, 5)))
        with pytest.raises(ValueError):
            StreamClusterer(num_features=0)

    def test_distance_evaluations_counted(self):
        sc = StreamClusterer(num_features=8)
        sc.run_stream(num_points=128, chunk=64)
        assert sc.distance_evaluations > 0


class TestWorkloadSequences:
    def test_sequences_nonempty_and_typed(self):
        for seq in (svrg_kernel_sequence(), cg_kernel_sequence(),
                    streamcluster_kernel_sequence()):
            assert seq
            assert all(spec.elements_per_rank > 0 for spec in seq)

    def test_svrg_sequence_contains_gemv_and_axpy(self):
        opcodes = {spec.opcode for spec in svrg_kernel_sequence()}
        assert NdaOpcode.GEMV in opcodes and NdaOpcode.AXPY in opcodes

    def test_streamcluster_is_read_heavy(self):
        seq = streamcluster_kernel_sequence()
        reads = sum(OPCODE_TRAITS[s.opcode].input_vectors * s.elements_per_rank for s in seq)
        writes = sum(OPCODE_TRAITS[s.opcode].output_vectors * s.elements_per_rank for s in seq)
        assert writes < reads * 0.3

    def test_lookup_by_name(self):
        assert application_kernel_sequence("svrg")
        assert application_kernel_sequence("CG")
        assert application_kernel_sequence("sc")
        with pytest.raises(KeyError):
            application_kernel_sequence("unknown")
