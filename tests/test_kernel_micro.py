"""Micro-oracles: each vectorized kernel primitive vs its scalar twin.

The system-level suites (engine equivalence, burst replay) prove the kernel
backend end-to-end; these property tests localize failures to the single
vector primitive that broke.  Each pure primitive (horizon max, masked
scatter, burst settlement arithmetic) is diffed against a brute-force
scalar computation on hypothesis-generated inputs, and the stateful
primitives (constraint tables, the batched scan) are diffed against the
scalar ``TimingEngine`` / ``FrFcfsScheduler`` oracles on live randomized
simulator state reached by running real workloads.
"""

import random

import pytest

from repro.kernel import kernel_available

if not kernel_available():
    pytest.skip("numpy unavailable: kernel backend off",
                allow_module_level=True)

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem
from repro.dram.commands import CommandType, DramAddress, RequestSource
from repro.experiments.common import resolve_config
from repro.kernel.scan import KernelFrFcfsScheduler
from repro.kernel.settle import elapsed_commands, settlement_horizons
from repro.kernel.timing_kernel import horizon_max, scatter_max
from repro.memctrl.frfcfs import NO_EVENT, FrFcfsScheduler
from repro.nda.isa import NdaOpcode

_CYCLE = st.integers(min_value=-(1 << 40), max_value=1 << 40)


class TestHorizonMax:
    @given(st.integers(1, 6).flatmap(
        lambda n: st.lists(
            st.lists(_CYCLE, min_size=5, max_size=5),
            min_size=n, max_size=n)))
    def test_matches_elementwise_python_max(self, columns):
        arrays = [np.asarray(column, dtype=np.int64) for column in columns]
        result = horizon_max(*arrays)
        for i in range(5):
            assert result[i] == max(column[i] for column in columns)

    @given(st.lists(_CYCLE, min_size=6, max_size=6),
           st.lists(_CYCLE, min_size=2, max_size=2), _CYCLE)
    def test_broadcasts_like_the_table_builds(self, flat, per_rank, scalar):
        # The table builds mix (R, BG) grids, (R, 1) rank columns and
        # scalars in a single reduction; the fold must broadcast them.
        grid = np.asarray(flat, dtype=np.int64).reshape(2, 3)
        column = np.asarray(per_rank, dtype=np.int64).reshape(2, 1)
        result = horizon_max(grid, column, scalar)
        for r in range(2):
            for g in range(3):
                assert result[r, g] == max(grid[r, g], per_rank[r], scalar)


class TestScatterMax:
    @given(st.lists(_CYCLE, min_size=8, max_size=8),
           st.integers(0, 7), st.integers(0, 8), _CYCLE)
    def test_slice_form_matches_scalar_loop(self, values, lo, span, update):
        hi = min(lo + span, 8)
        target = np.asarray(values, dtype=np.int64)
        expected = list(values)
        for i in range(lo, hi):
            expected[i] = max(expected[i], update)
        scatter_max(target, slice(lo, hi), update)
        assert target.tolist() == expected

    @given(st.lists(_CYCLE, min_size=8, max_size=8),
           st.lists(st.tuples(st.integers(0, 7), _CYCLE),
                    min_size=0, max_size=12))
    def test_index_form_accumulates_duplicates(self, values, updates):
        target = np.asarray(values, dtype=np.int64)
        expected = list(values)
        for index, update in updates:
            expected[index] = max(expected[index], update)
        indices = np.asarray([index for index, _ in updates], dtype=np.int64)
        amounts = np.asarray([update for _, update in updates],
                             dtype=np.int64)
        scatter_max(target, indices, amounts)
        assert target.tolist() == expected


class TestSettlementArithmetic:
    @given(st.integers(0, 1 << 20), st.integers(1, 16), st.integers(0, 40),
           st.integers(0, 40), st.integers(-5, 1 << 21))
    def test_elapsed_commands_matches_brute_force(self, start, step, count,
                                                  idx, upto):
        idx = min(idx, count)
        brute = sum(1 for k in range(count) if start + k * step < upto)
        expected = max(brute, idx)
        got = elapsed_commands(np.asarray([start]), np.asarray([step]),
                               np.asarray([idx]), np.asarray([count]),
                               upto)
        assert int(got[0]) == expected

    @given(st.lists(st.tuples(st.integers(0, 1 << 20), st.integers(1, 16),
                              st.integers(1, 40), st.booleans()),
                    min_size=1, max_size=6),
           st.integers(1, 30), st.integers(1, 30), st.integers(1, 16),
           st.integers(1, 30), st.integers(1, 40))
    @settings(max_examples=50)
    def test_settlement_horizons_match_per_command_replay(
            self, plans, tCL, tCWL, tBL, tRTP, write_to_precharge):
        start = np.asarray([p[0] for p in plans], dtype=np.int64)
        step = np.asarray([p[1] for p in plans], dtype=np.int64)
        j = np.asarray([p[2] for p in plans], dtype=np.int64)
        is_write = np.asarray([p[3] for p in plans], dtype=bool)
        c_last, bus, pre = settlement_horizons(
            start, step, j, is_write, tCL=tCL, tCWL=tCWL, tBL=tBL,
            tRTP=tRTP, write_to_precharge=write_to_precharge)
        for k, (s, d, n, w) in enumerate(plans):
            # Brute force: replay the settled prefix command by command,
            # tracking the horizons the last command leaves behind.
            last = bus_free = pre_allowed = None
            for i in range(n):
                last = s + i * d
                bus_free = last + (tCWL if w else tCL) + tBL
                pre_allowed = last + (write_to_precharge if w else tRTP)
            assert int(c_last[k]) == last
            assert int(bus[k]) == bus_free
            assert int(pre[k]) == pre_allowed


def _randomized_system(seed):
    """A kernel-backend system advanced to a seed-dependent live state."""
    rng = random.Random(seed)
    mode, mix, opcode = rng.choice([
        (AccessMode.HOST_ONLY, "mix1", None),
        (AccessMode.SHARED, "mix5", NdaOpcode.AXPY),
        (AccessMode.BANK_PARTITIONED, "mix1", NdaOpcode.DOT),
        (AccessMode.RANK_PARTITIONED, "mix8", NdaOpcode.COPY),
    ])
    platform = rng.choice([None, "ddr4-3200", "ddr5-4800"])
    system = ChopimSystem(
        config=resolve_config(platform, rng.choice([1, 2]), 2),
        mode=mode, mix=mix, engine="cycle", backend="kernel")
    if opcode is not None:
        system.set_nda_workload(opcode, elements_per_rank=1 << 12)
    system.run(cycles=rng.randrange(200, 900), warmup=0)
    return system


class TestConstraintTables:
    """``_build_tables`` vs the scalar constraint law, entry by entry."""

    @pytest.mark.parametrize("seed", range(8))
    def test_tables_match_scalar_probes(self, seed):
        system = _randomized_system(seed)
        dram = system.dram
        timing = dram.timing
        now = system.now
        org = dram.org
        host = RequestSource.HOST
        for channel, controller in system.channel_controllers.items():
            scheduler = controller.scheduler
            assert isinstance(scheduler, KernelFrFcfsScheduler)
            scheduler._build_tables()
            for r in range(org.ranks_per_channel):
                rank_index = channel * org.ranks_per_channel + r
                for g in range(org.bank_groups):
                    for b in range(org.banks_per_group):
                        bank_index = (rank_index * org.banks_per_rank
                                      + g * org.banks_per_group + b)
                        addr = DramAddress(channel, r, g, b, 0, 0,
                                           rank_index, bank_index)
                        # Column tables are host_column_base verbatim.
                        assert (int(scheduler._col_rd2d[r, g])
                                == timing.host_column_base(True, addr))
                        assert (int(scheduler._col_wr2d[r, g])
                                == timing.host_column_base(False, addr))
                        # ACT/PRE: table term + per-bank horizon, clamped,
                        # equals the full scalar law.
                        act = max(int(scheduler._act_tbl2d[r, g]),
                                  int(timing.bank_act[bank_index]), now)
                        assert act == max(now, timing.earliest_issue_at(
                            CommandType.ACT, addr, host, now))
                        pre = max(int(scheduler._refresh_tbl[r]),
                                  int(timing.bank_pre[bank_index]), now)
                        assert pre == max(now, timing.earliest_issue_at(
                            CommandType.PRE, addr, host, now))


class TestBatchedScan:
    """The vector scan vs the scalar bucketed scan on live queue state."""

    @staticmethod
    def _compare_scans(system):
        """Diff kernel vs scalar ``_select_bucketed`` on the current state.

        The scan is read-only, so both schedulers probe the same DRAM
        state.  The horizon is part of the contract only when no choice is
        issuable; the at-horizon prediction must then agree too.
        """
        compared = 0
        scalar = FrFcfsScheduler(system.dram)
        now = system.now
        for controller in system.channel_controllers.values():
            for queue in (controller.read_queue, controller.write_queue):
                kernel_pick, kernel_horizon, kernel_future = (
                    controller.scheduler._select_bucketed(queue, now))
                scalar_pick, scalar_horizon, scalar_future = (
                    scalar._select_bucketed(queue, now))
                assert (kernel_pick is None) == (scalar_pick is None)
                if kernel_pick is not None:
                    k_req, k_cmd = kernel_pick
                    s_req, s_cmd = scalar_pick
                    assert k_req.request_id == s_req.request_id
                    assert k_cmd.kind == s_cmd.kind
                    assert k_cmd.addr == s_cmd.addr
                else:
                    assert kernel_horizon == scalar_horizon
                    assert ((kernel_future is None)
                            == (scalar_future is None))
                    if kernel_future is not None:
                        k_req, k_cmd = kernel_future
                        s_req, s_cmd = scalar_future
                        assert k_req.request_id == s_req.request_id
                        assert k_cmd.kind == s_cmd.kind
                if len(queue):
                    compared += 1
        return compared

    @pytest.mark.parametrize("seed", range(8))
    def test_scan_matches_scalar_scheduler(self, seed):
        system = _randomized_system(seed + 100)
        nonempty = self._compare_scans(system)
        # March the system forward and re-compare at several snapshots so
        # the scan is exercised against evolving queue and timing state.
        for _ in range(6):
            system.run(cycles=97)
            nonempty += self._compare_scans(system)
        assert nonempty > 0, "scenario never produced a non-empty queue"

    def test_empty_queue_reports_no_event(self):
        system = ChopimSystem(config=resolve_config(None),
                              mode=AccessMode.NDA_ONLY, backend="kernel")
        controller = system.channel_controllers[0]
        pick, horizon, future = controller.scheduler._select_bucketed(
            controller.read_queue, 0)
        assert pick is None and future is None
        assert horizon == NO_EVENT
