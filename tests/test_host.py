"""Tests for the host model: profiles, traffic, caches, prefetcher, cores, mixes."""

import pytest

from repro.config import HostConfig
from repro.host.cache import Cache, CacheHierarchy
from repro.host.core import CoreModel
from repro.host.mixes import mix_aggregate_mpki, mix_core_count, mix_names, mix_profiles
from repro.host.prefetcher import StridePrefetcher
from repro.host.profiles import SPEC_PROFILES, make_synthetic_profile, profile_by_name
from repro.host.traffic import AddressStreamGenerator
from repro.utils.rng import DeterministicRng


class TestProfiles:
    def test_all_table_ii_benchmarks_present(self):
        for name in ("mcf_r", "lbm_r", "omnetpp_r", "gemsFDTD", "soplex", "milc",
                     "bwaves_r", "leslie3d", "astar", "cactusBSSN_r", "leela_r",
                     "deepsjeng_r", "xchange2_r"):
            assert name in SPEC_PROFILES

    def test_intensity_classes_ordered(self):
        assert all(SPEC_PROFILES[n].mpki >= 15 for n in SPEC_PROFILES
                   if SPEC_PROFILES[n].intensity == "H")
        assert all(SPEC_PROFILES[n].mpki < 3 for n in SPEC_PROFILES
                   if SPEC_PROFILES[n].intensity == "L")

    def test_profile_lookup_with_suffix(self):
        assert profile_by_name("mcf").name == "mcf_r"
        assert profile_by_name("mcf_r").name == "mcf_r"
        with pytest.raises(KeyError):
            profile_by_name("not_a_benchmark")

    def test_instructions_per_miss(self):
        p = make_synthetic_profile("x", mpki=10)
        assert p.instructions_per_miss() == 100.0
        zero = make_synthetic_profile("z", mpki=0)
        assert zero.instructions_per_miss() == float("inf")

    def test_synthetic_profile_validation(self):
        with pytest.raises(ValueError):
            make_synthetic_profile("bad", mpki=-1)
        with pytest.raises(ValueError):
            make_synthetic_profile("bad", mpki=1, read_fraction=2.0)


class TestMixes:
    def test_nine_mixes(self):
        assert mix_names() == [f"mix{i}" for i in range(9)]

    def test_mix0_has_eight_benchmarks_others_four(self):
        assert mix_core_count("mix0") == 8
        for mix in mix_names()[1:]:
            assert mix_core_count(mix) == 4

    def test_mix_intensity_ordering(self):
        """mix1 is the most and mix8 the least memory-intensive 4-core mix."""
        intensities = [mix_aggregate_mpki(m) for m in mix_names()[1:]]
        assert intensities[0] == max(intensities)
        assert intensities[-1] == min(intensities)

    def test_unknown_mix_raises(self):
        with pytest.raises(KeyError):
            mix_profiles("mix99")


class TestTraffic:
    def make(self, sequential=0.5, read_fraction=0.7):
        profile = make_synthetic_profile("t", mpki=20, read_fraction=read_fraction,
                                         sequential_fraction=sequential,
                                         footprint_bytes=1 << 20)
        rng = DeterministicRng(1, "traffic-test")
        return AddressStreamGenerator(profile, region_base=1 << 24,
                                      region_bytes=1 << 22, rng=rng)

    def test_addresses_stay_in_region(self):
        gen = self.make()
        for _ in range(500):
            phys, _ = gen.next_access()
            assert (1 << 24) <= phys < (1 << 24) + (1 << 22)

    def test_addresses_cacheline_aligned(self):
        gen = self.make()
        for _ in range(100):
            phys, _ = gen.next_access()
            assert phys % 64 == 0

    def test_write_fraction_roughly_respected(self):
        gen = self.make(read_fraction=0.6)
        accesses = [gen.next_access()[1] for _ in range(4000)]
        write_ratio = sum(accesses) / len(accesses)
        assert abs(write_ratio - 0.4) < 0.08

    def test_sequential_stream_produces_consecutive_lines(self):
        gen = self.make(sequential=1.0, read_fraction=1.0)
        a = gen.next_read_address()
        b = gen.next_read_address()
        assert b == a + 64

    def test_region_too_small_rejected(self):
        profile = make_synthetic_profile("t", mpki=1)
        with pytest.raises(ValueError):
            AddressStreamGenerator(profile, 0, 32, DeterministicRng(1, "x"))


class TestCache:
    def test_hit_after_fill(self):
        cache = Cache("L1", 32 * 1024, 8)
        assert not cache.access(0x1000, False)
        cache.fill(0x1000)
        assert cache.access(0x1000, False)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_lru_eviction_and_dirty_writeback(self):
        cache = Cache("tiny", 4 * 64, 2, line_bytes=64)  # 2 sets x 2 ways
        cache.fill(0 * 64, dirty=True)
        cache.fill(2 * 64)   # same set (stride = num_sets lines)
        victim = cache.fill(4 * 64)
        assert victim == 0
        assert cache.writebacks == 1

    def test_mshr_limit(self):
        cache = Cache("L1", 32 * 1024, 8, mshrs=2)
        assert cache.allocate_mshr(0x0)
        assert cache.allocate_mshr(0x40)
        assert not cache.allocate_mshr(0x80)
        assert cache.allocate_mshr(0x0)  # merge with in-flight miss
        cache.release_mshr(0x0)
        assert cache.allocate_mshr(0x80)

    def test_invalidate(self):
        cache = Cache("L1", 32 * 1024, 8)
        cache.fill(0x1000)
        assert cache.invalidate(0x1000)
        assert not cache.invalidate(0x1000)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, 3)

    def test_hierarchy_inclusion_path(self):
        h = CacheHierarchy(prefetch=False)
        result = h.access(0x4000, False)
        assert result.hit_level is None
        assert result.memory_reads == [0x4000]
        again = h.access(0x4000, False)
        assert again.hit_level == "L1"

    def test_hierarchy_bypass_for_nda_exchange(self):
        h = CacheHierarchy(prefetch=False)
        h.access(0x4000, False)
        result = h.access(0x4000, False, bypass=True)
        assert result.memory_reads == [0x4000]
        assert h.access(0x4000, False).hit_level is None or True

    def test_hierarchy_prefetcher_issues_extra_reads(self):
        h = CacheHierarchy(prefetch=True)
        total_reads = 0
        for i in range(8):
            result = h.access(0x100000 + i * 4096, False, stream_id=1)
            total_reads += len(result.memory_reads)
        assert total_reads > 8  # demand misses plus trained prefetches

    def test_hierarchy_stats(self):
        h = CacheHierarchy(prefetch=False)
        h.access(0x0, False)
        stats = h.stats()
        assert stats["accesses"] == 1
        assert 0.0 <= stats["llc_hit_rate"] <= 1.0


class TestStridePrefetcher:
    def test_trains_on_constant_stride(self):
        pf = StridePrefetcher(threshold=2, degree=2)
        addresses = [0x1000 + i * 256 for i in range(6)]
        emitted = []
        for a in addresses:
            emitted.extend(pf.observe(0, a))
        assert emitted
        assert all((p - 0x1000) % 256 == 0 for p in emitted)

    def test_no_prefetch_for_random_stream(self):
        pf = StridePrefetcher(threshold=3)
        emitted = []
        for a in (0x0, 0x5000, 0x100, 0x9040, 0x33):
            emitted.extend(pf.observe(0, a))
        assert emitted == []

    def test_table_capacity_eviction(self):
        pf = StridePrefetcher(table_entries=2)
        pf.observe(1, 0)
        pf.observe(2, 0)
        pf.observe(3, 0)
        assert len(pf._table) == 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StridePrefetcher(table_entries=0)


class TestCoreModel:
    def make_core(self, mpki=20.0, mlp=8):
        profile = make_synthetic_profile("c", mpki=mpki, mlp=mlp,
                                         footprint_bytes=1 << 20)
        rng = DeterministicRng(3, "core-test")
        traffic = AddressStreamGenerator(profile, 0, 1 << 22, rng.spawn("t"))
        return CoreModel(0, profile, traffic, HostConfig(), rng)

    def test_ipc_bounded_by_issue_width(self):
        core = self.make_core(mpki=0.0)
        core.tick(1000.0)
        assert 0 < core.ipc <= HostConfig().fetch_width

    def test_memory_free_core_hits_base_cpi(self):
        core = self.make_core(mpki=0.0)
        core.tick(1000.0)
        assert core.ipc == pytest.approx(1.0 / core.profile.base_cpi, rel=0.05)

    def test_generates_requests_at_mpki_rate(self):
        core = self.make_core(mpki=20.0)
        requests = []
        for _ in range(200):
            requests.extend(core.tick(10.0))
            # Complete misses immediately so the core never stalls.
            for phys, is_write in requests[-5:]:
                if not is_write:
                    core.notify_completion(phys)
        observed_mpki = 1000.0 * (core.reads_issued + core.writes_issued) / core.instructions_retired
        assert 10.0 < observed_mpki < 35.0

    def test_core_stalls_without_completions(self):
        core = self.make_core(mpki=50.0, mlp=2)
        for _ in range(500):
            core.tick(4.0)
        assert core.stall_cycles > 0
        assert core.outstanding_misses <= 2
        low_ipc = core.ipc
        # Completing requests unblocks retirement.
        core2 = self.make_core(mpki=50.0, mlp=2)
        for _ in range(500):
            for phys, is_write in core2.tick(4.0):
                if not is_write:
                    core2.notify_completion(phys)
        assert core2.ipc > low_ipc

    def test_stats_dict(self):
        core = self.make_core()
        core.tick(50.0)
        stats = core.stats()
        assert set(stats) >= {"ipc", "instructions", "cpu_cycles", "reads", "writes"}
