"""Tests for address mapping, bank partitioning and NDA operand layout."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.addressing.bank_partition import BankPartitionMapping
from repro.addressing.layout import (
    OperandPlacement,
    check_operand_alignment,
    element_location,
    partition_elements_per_rank,
    rank_of_element,
)
from repro.addressing.mapping import (
    SkylakeMapping,
    linear_mapping,
    partition_friendly_mapping,
    skylake_mapping,
)
from repro.config import DramOrgConfig

ORG = DramOrgConfig()
SMALL = DramOrgConfig(rows_per_bank=256)


class TestSkylakeMapping:
    def test_covers_all_fields_within_bounds(self):
        m = skylake_mapping(SMALL)
        for phys in range(0, SMALL.total_bytes, SMALL.total_bytes // 257):
            a = m.to_dram(phys)
            assert 0 <= a.channel < SMALL.channels
            assert 0 <= a.rank < SMALL.ranks_per_channel
            assert 0 <= a.bank_group < SMALL.bank_groups
            assert 0 <= a.bank < SMALL.banks_per_group
            assert 0 <= a.row < SMALL.rows_per_bank
            assert 0 <= a.column < SMALL.columns_per_row

    def test_out_of_range_rejected(self):
        m = skylake_mapping(SMALL)
        with pytest.raises(ValueError):
            m.to_dram(SMALL.total_bytes)
        with pytest.raises(ValueError):
            m.to_dram(-1)

    def test_consecutive_cachelines_interleave_channels(self):
        """Fine-grain channel interleaving is the point of the hashed mapping."""
        m = skylake_mapping(ORG)
        channels = {m.to_dram(i * 256).channel for i in range(8)}
        assert len(channels) == ORG.channels

    def test_hashing_spreads_banks_for_row_strides(self):
        """Accesses with a row-sized stride must not all hit the same bank."""
        m = skylake_mapping(ORG)
        stride = 1 << m.row_lsb
        banks = {(m.to_dram(i * stride).bank_group, m.to_dram(i * stride).bank)
                 for i in range(16)}
        assert len(banks) > 1

    def test_linear_mapping_has_no_hash(self):
        m = linear_mapping(ORG)
        stride = 1 << m.row_lsb
        banks = {(m.to_dram(i * stride).bank_group, m.to_dram(i * stride).bank)
                 for i in range(16)}
        assert len(banks) == 1

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=SMALL.total_bytes // 64 - 1))
    def test_round_trip_small(self, cacheline):
        m = skylake_mapping(SMALL)
        phys = cacheline * 64
        assert m.from_dram(m.to_dram(phys)) == phys

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=ORG.total_bytes - 1))
    def test_round_trip_full(self, phys):
        m = skylake_mapping(ORG)
        assert m.round_trip_ok(phys)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=0, max_value=SMALL.total_bytes // 64 - 1),
           st.integers(min_value=0, max_value=SMALL.total_bytes // 64 - 1))
    def test_injective_on_cachelines(self, a, b):
        m = skylake_mapping(SMALL)
        if a != b:
            assert m.to_dram(a * 64) != m.to_dram(b * 64)

    def test_frame_color_constant_within_frame(self):
        m = skylake_mapping(ORG)
        base = 5 * (1 << 21)
        color = m.frame_color(base)
        for offset in (0, 64, 4096, (1 << 21) - 64):
            a0 = m.to_dram(base + offset)
            a1 = m.to_dram((base ^ 0) + offset)
            assert (a0.channel, a0.rank) == (a1.channel, a1.rank)
        assert isinstance(color, tuple) and len(color) == 2

    def test_num_colors_bounded_by_channel_rank_product(self):
        m = skylake_mapping(ORG)
        assert 1 <= m.num_colors() <= ORG.channels * ORG.ranks_per_channel

    def test_partition_friendly_avoids_top_row_bits(self):
        m = partition_friendly_mapping(ORG)
        assert not m.uses_top_row_bits_in_hash(4)
        sky = skylake_mapping(ORG)
        assert sky.uses_top_row_bits_in_hash(16)  # hashes use some row bits


class TestColoringProperty:
    """The Section III-A property: same color + same offset => same rank."""

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=(1 << 21) - 4))
    def test_same_color_frames_align(self, pfn_a, pfn_b, offset):
        m = skylake_mapping(ORG)
        page_bits = 21
        color_a = m.frame_color(pfn_a, page_bits, is_pfn=True)
        color_b = m.frame_color(pfn_b, page_bits, is_pfn=True)
        if color_a != color_b:
            return
        a = m.to_dram((pfn_a << page_bits) + offset)
        b = m.to_dram((pfn_b << page_bits) + offset)
        assert (a.channel, a.rank) == (b.channel, b.rank)


class TestBankPartitionMapping:
    def test_requires_partition_friendly_base(self):
        from repro.addressing.mapping import XorFieldMapping

        # A mapping that hashes the top row bits into the bank selection
        # violates the Figure 4b requirement and must be rejected.
        hostile = XorFieldMapping(ORG, hash_partners={"bank": [(15,), (14,)]})
        with pytest.raises(ValueError):
            BankPartitionMapping(ORG, 1, base=hostile)

    def test_reserved_bank_count_bounds(self):
        with pytest.raises(ValueError):
            BankPartitionMapping(ORG, 0)
        with pytest.raises(ValueError):
            BankPartitionMapping(ORG, 16)

    def test_capacity_split(self):
        m = BankPartitionMapping(ORG, reserved_banks_per_rank=2)
        assert m.shared_capacity_bytes == ORG.total_bytes * 2 // 16
        assert m.host_capacity_bytes + m.shared_capacity_bytes == ORG.total_bytes

    def test_host_addresses_never_land_in_reserved_banks(self):
        m = BankPartitionMapping(ORG, reserved_banks_per_rank=1)
        step = m.host_capacity_bytes // 1013
        for i in range(1013):
            a = m.to_dram(i * step)
            assert not m.is_reserved_bank(a.bank_group, a.bank)

    def test_shared_addresses_always_land_in_reserved_banks(self):
        m = BankPartitionMapping(ORG, reserved_banks_per_rank=1)
        base = m.shared_base()
        step = m.shared_capacity_bytes // 511
        for i in range(511):
            a = m.to_dram(base + i * step)
            assert m.is_reserved_bank(a.bank_group, a.bank)

    def test_no_aliasing_between_host_and_shared(self):
        small = DramOrgConfig(rows_per_bank=256)
        m = BankPartitionMapping(small, reserved_banks_per_rank=1)
        seen = {}
        step = 64 * 7
        for phys in range(0, small.total_bytes, step):
            a = m.to_dram(phys)
            key = (a.channel, a.rank, a.bank_group, a.bank, a.row, a.column)
            assert key not in seen, f"alias between {phys:#x} and {seen[key]:#x}"
            seen[key] = phys

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=0, max_value=SMALL.total_bytes // 64 - 1))
    def test_round_trip(self, cacheline):
        m = BankPartitionMapping(SMALL, reserved_banks_per_rank=1)
        phys = cacheline * 64
        assert m.from_dram(m.to_dram(phys)) == phys

    def test_shared_region_rank_rotation_at_row_granularity(self):
        m = BankPartitionMapping(ORG, reserved_banks_per_rank=1)
        base = m.shared_base()
        first = m.to_dram(base)
        within_row = m.to_dram(base + ORG.row_bytes - 64)
        next_row = m.to_dram(base + ORG.row_bytes)
        assert (first.channel, first.rank) == (within_row.channel, within_row.rank)
        assert (first.channel, first.rank) != (next_row.channel, next_row.rank)

    def test_host_banks_listing(self):
        m = BankPartitionMapping(ORG, reserved_banks_per_rank=2)
        assert len(m.host_banks()) == 14
        assert set(m.host_banks()).isdisjoint(m.reserved_banks)


class TestOperandLayout:
    def test_shared_region_operands_stay_aligned(self):
        """Figure 3: equal indices of system-row-aligned operands co-locate."""
        m = BankPartitionMapping(ORG, reserved_banks_per_rank=1)
        stride = m.shared_stride_bytes()
        base_a = m.shared_base()
        base_b = m.shared_base() + 4 * stride
        misaligned = check_operand_alignment(m, [base_a, base_b],
                                             num_elements=2048, sample_stride=17)
        assert misaligned == []

    def test_naive_layout_misaligns_under_hashing(self):
        """With the hashed host mapping and arbitrary bases, operands shuffle
        differently across ranks (the left side of Figure 3)."""
        m = skylake_mapping(ORG)
        base_a = 0
        base_b = 3 * (1 << 20) + 4096  # not system-row aligned, different color
        misaligned = check_operand_alignment(m, [base_a, base_b],
                                             num_elements=4096, sample_stride=13)
        assert misaligned != []

    def test_element_location_and_rank(self):
        m = linear_mapping(ORG)
        loc = element_location(m, 0, 16, elem_bytes=4)
        assert loc == m.to_dram(64)
        assert rank_of_element(m, 0, 0) == (loc.channel, loc.rank) or True

    def test_operand_placement_balance_in_shared_region(self):
        m = BankPartitionMapping(ORG, reserved_banks_per_rank=1)
        placement = OperandPlacement(m, m.shared_base(),
                                     num_bytes=m.shared_stride_bytes() * 2)
        assert placement.is_balanced()
        per_rank = placement.bytes_per_rank()
        assert len(per_rank) == ORG.total_ranks

    def test_operand_placement_run_length(self):
        m = BankPartitionMapping(ORG, reserved_banks_per_rank=1)
        placement = OperandPlacement(m, m.shared_base(), num_bytes=ORG.row_bytes * 4)
        # Whole rows are contiguous in the shared layout.
        assert placement.average_run_length() == pytest.approx(ORG.cachelines_per_row)

    def test_partition_elements_per_rank(self):
        assert partition_elements_per_rank(10, 4) == [3, 3, 2, 2]
        assert sum(partition_elements_per_rank(1023, 8)) == 1023
        with pytest.raises(ValueError):
            partition_elements_per_rank(4, 0)


# --------------------------------------------------------------------------- #
# Mask-based decode equivalence (PR 2 hot-path rework)
# --------------------------------------------------------------------------- #

def _bit(value, position):
    return (value >> position) & 1


def _oracle_extract(spec, phys):
    """The pre-mask bit-loop implementation of FieldSpec.extract, kept as a
    reference oracle: out[i] = phys[home_lsb+i] XOR (XOR of partners[i])."""
    value = 0
    for i in range(spec.width):
        bit = _bit(phys, spec.home_lsb + i)
        if i < len(spec.partners):
            for p in spec.partners[i]:
                bit ^= _bit(phys, p)
        value |= bit << i
    return value


def _oracle_hash_part(spec, phys):
    value = 0
    for i in range(spec.width):
        bit = 0
        if i < len(spec.partners):
            for p in spec.partners[i]:
                bit ^= _bit(phys, p)
        value |= bit << i
    return value


def _oracle_to_dram(mapping, phys):
    """Legacy decode: field extraction via the bit-loop oracle."""
    mapping.check_range(phys)
    col_lo = (phys >> mapping._col_lo_lsb) & ((1 << mapping.column_split) - 1)
    col_hi_width = mapping.column_bits - mapping.column_split
    col_hi = (phys >> mapping._col_hi_lsb) & ((1 << col_hi_width) - 1)
    column = (col_hi << mapping.column_split) | col_lo
    row = (phys >> mapping.row_lsb) & ((1 << mapping.row_bits) - 1)
    return (
        _oracle_extract(mapping.fields["channel"], phys),
        _oracle_extract(mapping.fields["rank"], phys),
        _oracle_extract(mapping.fields["bank_group"], phys),
        _oracle_extract(mapping.fields["bank"], phys),
        row,
        column,
    )


_MAPPING_FACTORIES = [skylake_mapping, linear_mapping, partition_friendly_mapping]


class TestMaskDecodeEquivalence:
    """The mask/popcount decode must match the legacy bit-loop decode."""

    @pytest.mark.parametrize("factory", _MAPPING_FACTORIES)
    @given(fraction=st.integers(min_value=0, max_value=(1 << 48) - 1))
    @settings(max_examples=200, deadline=None)
    def test_to_dram_matches_bitloop_oracle(self, factory, fraction):
        m = factory(ORG)
        phys = fraction % m.capacity_bytes
        a = m.to_dram(phys)
        assert (a.channel, a.rank, a.bank_group, a.bank, a.row, a.column) \
            == _oracle_to_dram(m, phys)

    @pytest.mark.parametrize("factory", _MAPPING_FACTORIES)
    @given(fraction=st.integers(min_value=0, max_value=(1 << 48) - 1))
    @settings(max_examples=200, deadline=None)
    def test_hash_part_matches_bitloop_oracle(self, factory, fraction):
        m = factory(ORG)
        phys = fraction % m.capacity_bytes
        for spec in m.fields.values():
            assert spec.hash_part(phys) == _oracle_hash_part(spec, phys)

    @pytest.mark.parametrize("factory", _MAPPING_FACTORIES)
    @given(fraction=st.integers(min_value=0, max_value=(1 << 48) - 1))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_under_mask_decode(self, factory, fraction):
        m = factory(ORG)
        phys = fraction % m.capacity_bytes
        assert m.round_trip_ok(phys)

    def test_decode_stamps_dense_indices(self):
        m = skylake_mapping(ORG)
        for phys in range(0, ORG.total_bytes, ORG.total_bytes // 129):
            a = m.to_dram(phys)
            assert a.rank_index == a.channel * ORG.ranks_per_channel + a.rank
            assert a.bank_index == (a.rank_index * ORG.banks_per_rank
                                    + a.bank_group * ORG.banks_per_group + a.bank)

    def test_stamped_and_unstamped_addresses_compare_equal(self):
        m = skylake_mapping(ORG)
        a = m.to_dram(1 << 20)
        from repro.dram.commands import DramAddress
        bare = DramAddress(a.channel, a.rank, a.bank_group, a.bank, a.row, a.column)
        assert a == bare and hash(a) == hash(bare)
        assert bare.rank_index == -1 and bare.bank_index == -1

    def test_replace_of_bank_coordinate_clears_stamps(self):
        m = skylake_mapping(ORG)
        a = m.to_dram(1 << 21)
        moved = a._replace(rank=(a.rank + 1) % ORG.ranks_per_channel)
        assert moved.rank_index == -1 and moved.bank_index == -1
        # Row/column changes keep the (still valid) stamps.
        assert a.with_column(3).bank_index == a.bank_index
        assert a.with_row(5).rank_index == a.rank_index

    def test_num_colors_memoized_and_stable(self):
        m = skylake_mapping(ORG)
        first = m.num_colors()
        assert m.num_colors() == first
        assert m._num_colors_cache[21] == first
