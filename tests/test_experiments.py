"""Tests for the experiment harnesses (tiny configurations, short runs).

These are smoke+shape tests: each figure's ``run_*`` entry point must produce
rows with the expected schema, and the headline qualitative result of the
figure must hold on a reduced configuration.  The full-size regenerations
live in ``benchmarks/``.
"""

import pytest

from repro.experiments.common import format_table, opcode_by_name
from repro.experiments.fig02_idle import run_idle_histogram, short_idle_fraction
from repro.experiments.fig10_coarse import coarse_vs_fine_summary, run_coarse_grain_sweep
from repro.experiments.fig11_bankpart import partitioning_speedup, run_bank_partitioning
from repro.experiments.fig12_throttle import run_write_throttling, tradeoff_summary
from repro.experiments.fig13_opsize import run_operation_size_sweep, write_intensity_correlation
from repro.experiments.fig14_scaling import (
    chopim_advantage,
    run_scalability_comparison,
    scaling_factor,
)
from repro.experiments.fig15_svrg import run_svrg_convergence, run_svrg_scaling
from repro.experiments.power_table import concurrent_below_host_max, run_power_analysis
from repro.nda.isa import NdaOpcode

CYCLES = 2500
WARMUP = 200
SMALL_DATASET = {"num_samples": 512, "num_features": 64, "classes": 4}


class TestCommon:
    def test_format_table(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 2, "b": 0.25}]
        text = format_table(rows)
        assert "a" in text and "0.500" in text
        assert format_table([]) == "(no data)"

    def test_opcode_lookup(self):
        assert opcode_by_name("dot") is NdaOpcode.DOT
        assert opcode_by_name("COPY") is NdaOpcode.COPY
        with pytest.raises(KeyError):
            opcode_by_name("fma")


class TestFig02:
    def test_idle_breakdown_rows(self):
        rows = run_idle_histogram(mixes=["mix1", "mix8"], cycles=CYCLES, warmup=WARMUP)
        assert [r["mix"] for r in rows] == ["mix1", "mix8"]
        for row in rows:
            total = row["Busy"] + sum(row[k] for k in
                                      ("1-10", "10-100", "100-250", "250-500",
                                       "500-1000", "1000-"))
            assert total == pytest.approx(1.0, abs=0.02)

    def test_intense_mix_is_busier_and_idle_gaps_are_short(self):
        rows = run_idle_histogram(mixes=["mix1", "mix8"], cycles=CYCLES, warmup=WARMUP)
        by_mix = {r["mix"]: r for r in rows}
        assert by_mix["mix1"]["Busy"] > by_mix["mix8"]["Busy"]
        # Figure 2's takeaway: for memory-intensive mixes the bulk of idle
        # time sits in short (<250 cycle) gaps.
        assert short_idle_fraction(by_mix["mix1"]) > 0.5


class TestFig10:
    def test_coarse_grain_beats_fine_grain(self):
        rows = run_coarse_grain_sweep(granularities=(1, 512), cycles=CYCLES,
                                      warmup=WARMUP, elements_per_rank=1 << 13)
        assert len(rows) == 2
        summary = coarse_vs_fine_summary(rows)
        assert summary["2x2_nda_util_gain"] > 1.0
        assert summary["2x2_host_ipc_gain"] >= 0.95


class TestFig11:
    def test_partitioning_improves_nda_utilization(self):
        rows = run_bank_partitioning(mixes=["mix1"], cycles=CYCLES, warmup=WARMUP)
        assert len(rows) == 4  # 2 configurations x 2 operations
        gains = partitioning_speedup(rows, operation="dot")
        assert gains["mix1"] > 1.1

    def test_utilization_below_idealized_bound(self):
        rows = run_bank_partitioning(mixes=["mix1"], cycles=CYCLES, warmup=WARMUP)
        for row in rows:
            assert row["nda_bw_utilization"] <= row["idealized_bw_utilization"] + 0.05


class TestFig12:
    def test_throttling_tradeoff(self):
        rows = run_write_throttling(mixes=["mix1"], cycles=CYCLES, warmup=WARMUP,
                                    elements_per_rank=1 << 13)
        summary = tradeoff_summary(rows)
        assert set(summary) == {"stochastic_1_16", "stochastic_1_4",
                                "predict_next_rank", "issue_if_idle"}
        # No throttling maximizes NDA progress but hurts the host the most.
        assert (summary["issue_if_idle"]["nda_bw_utilization"]
                >= summary["predict_next_rank"]["nda_bw_utilization"])
        assert (summary["issue_if_idle"]["host_ipc"]
                <= summary["predict_next_rank"]["host_ipc"] + 0.05)
        # A lower stochastic probability shields the host at least as well
        # (the NDA-side ordering is noisy at these short windows, so the
        # host-side ordering is the stable property to check).
        assert (summary["stochastic_1_16"]["host_ipc"]
                >= summary["stochastic_1_4"]["host_ipc"] - 0.15)


class TestFig13:
    def test_rows_and_write_intensity_trend(self):
        rows = run_operation_size_sweep(operations=(NdaOpcode.DOT, NdaOpcode.COPY),
                                        sizes=("medium",), include_async_small=False,
                                        cycles=CYCLES, warmup=WARMUP)
        assert len(rows) == 2
        assert write_intensity_correlation(rows, size="medium") >= 0.5

    def test_async_launch_helps_small_operations(self):
        rows = run_operation_size_sweep(operations=(NdaOpcode.NRM2,),
                                        sizes=("small",), include_async_small=True,
                                        cycles=CYCLES, warmup=WARMUP)
        by_size = {r["size"]: r for r in rows}
        assert by_size["small+async"]["nda_bw_utilization"] >= \
            by_size["small"]["nda_bw_utilization"] * 0.9


class TestFig14:
    def test_chopim_beats_rank_partitioning(self):
        rows = run_scalability_comparison(rank_configs=((2, 2),), workloads=("dot",),
                                          cycles=CYCLES, warmup=WARMUP)
        advantage = chopim_advantage(rows)
        assert advantage["2x2:dot"] > 1.0

    def test_scaling_factor_computation(self):
        rows = run_scalability_comparison(rank_configs=((2, 2), (2, 4)),
                                          workloads=("dot",),
                                          cycles=CYCLES, warmup=WARMUP)
        factor = scaling_factor(rows, "chopim", "dot")
        assert factor is not None and factor > 1.0


class TestFig15:
    def test_convergence_histories_have_expected_series(self):
        histories = run_svrg_convergence(num_ndas=4, outer_iterations=3,
                                         epoch_fractions=(1.0, 0.25),
                                         dataset_kwargs=SMALL_DATASET)
        assert "HO_epoch_N" in histories
        assert "ACC_epoch_N/4" in histories
        assert "DelayedUpdate" in histories
        for history in histories.values():
            assert history[-1].training_loss <= history[0].training_loss + 1e-9

    def test_scaling_speedups_positive_and_growing(self):
        rows = run_svrg_scaling(nda_counts=(4, 16), outer_iterations=6,
                                dataset_kwargs=SMALL_DATASET)
        assert len(rows) == 2
        assert all(r["acc_best_speedup"] and r["acc_best_speedup"] > 1.0 for r in rows)
        assert rows[1]["acc_best_speedup"] >= rows[0]["acc_best_speedup"]


class TestPowerTable:
    def test_power_rows_and_bound(self):
        rows = run_power_analysis(mix="mix8", cycles=CYCLES, warmup=WARMUP)
        scenarios = {r["scenario"] for r in rows}
        assert "theoretical_max_host_only" in scenarios
        assert any(s.startswith("concurrent") for s in scenarios)
        assert concurrent_below_host_max(rows)
        for row in rows:
            assert row["total_power_w"] >= 0.0
