"""Tests for the OS model: buddy allocator, frame coloring, virtual memory."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.addressing.mapping import skylake_mapping
from repro.config import DramOrgConfig
from repro.osmodel.buddy import BuddyAllocator, OutOfMemoryError
from repro.osmodel.coloring import ColoredFrameAllocator
from repro.osmodel.vm import PageTable, TranslationError, VirtualMemory

MIB = 1 << 20


class TestBuddyAllocator:
    def test_allocate_and_free_roundtrip(self):
        pool = BuddyAllocator(0, 16 * MIB, min_block=4096)
        a = pool.allocate(8192)
        b = pool.allocate(4096)
        assert a % 8192 == 0
        assert a != b
        pool.free(a)
        pool.free(b)
        assert pool.allocated_bytes == 0
        assert pool.free_bytes == 16 * MIB

    def test_blocks_are_naturally_aligned(self):
        pool = BuddyAllocator(0, 16 * MIB, min_block=4096)
        addr = pool.allocate(2 * MIB)
        assert addr % (2 * MIB) == 0

    def test_out_of_memory(self):
        pool = BuddyAllocator(0, 1 * MIB, min_block=4096)
        with pytest.raises(OutOfMemoryError):
            pool.allocate(2 * MIB)

    def test_exhaustion_and_coalescing(self):
        pool = BuddyAllocator(0, 1 * MIB, min_block=4096)
        blocks = [pool.allocate(4096) for _ in range(256)]
        with pytest.raises(OutOfMemoryError):
            pool.allocate(4096)
        for b in blocks:
            pool.free(b)
        # Everything coalesced back into one max-order block.
        assert pool.fragmentation() == 0.0
        assert pool.allocate(1 * MIB) == 0

    def test_double_free_rejected(self):
        pool = BuddyAllocator(0, 1 * MIB, min_block=4096)
        a = pool.allocate(4096)
        pool.free(a)
        with pytest.raises(ValueError):
            pool.free(a)

    def test_misaligned_construction_rejected(self):
        with pytest.raises(ValueError):
            BuddyAllocator(100, 1 * MIB, min_block=4096)
        with pytest.raises(ValueError):
            BuddyAllocator(0, 1 * MIB, min_block=1000)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=64 * 1024),
                    min_size=1, max_size=30))
    def test_allocations_never_overlap(self, sizes):
        pool = BuddyAllocator(0, 32 * MIB, min_block=4096)
        spans = []
        for size in sizes:
            addr = pool.allocate(size)
            rounded = 4096
            while rounded < size:
                rounded *= 2
            for other_start, other_end in spans:
                assert addr >= other_end or addr + rounded <= other_start
            spans.append((addr, addr + rounded))


class TestColoredFrameAllocator:
    @pytest.fixture
    def allocator(self):
        org = DramOrgConfig()
        mapping = skylake_mapping(org)
        return ColoredFrameAllocator(mapping, 0, 256 * MIB, frame_bytes=2 * MIB)

    def test_colors_partition_all_frames(self, allocator):
        total = sum(allocator.free_frames(c) for c in allocator.colors())
        assert total == 128  # 256 MiB / 2 MiB

    def test_allocate_same_color(self, allocator):
        frames = allocator.allocate_frames(4)
        colors = {allocator.color_of(f) for f in frames}
        assert len(colors) == 1
        assert allocator.verify_color_invariant()

    def test_allocate_specific_color(self, allocator):
        color = allocator.colors()[0]
        frames = allocator.allocate_frames(2, color)
        assert all(allocator.color_of(f) == color for f in frames)

    def test_allocate_bytes_rounds_up(self, allocator):
        frames = allocator.allocate_bytes(3 * MIB)
        assert len(frames) == 2

    def test_exhausting_one_color(self, allocator):
        color = allocator.colors()[0]
        available = allocator.free_frames(color)
        allocator.allocate_frames(available, color)
        with pytest.raises(OutOfMemoryError):
            allocator.allocate_frames(1, color)

    def test_free_frame_returns_to_pool(self, allocator):
        color = allocator.colors()[0]
        before = allocator.free_frames(color)
        frame = allocator.allocate_frames(1, color)[0]
        assert allocator.free_frames(color) == before - 1
        allocator.free_frame(frame)
        assert allocator.free_frames(color) == before

    def test_invalid_construction(self):
        org = DramOrgConfig()
        mapping = skylake_mapping(org)
        with pytest.raises(ValueError):
            ColoredFrameAllocator(mapping, 0, 3 * MIB, frame_bytes=2 * MIB)
        with pytest.raises(ValueError):
            ColoredFrameAllocator(mapping, 0, 4 * MIB, frame_bytes=3 * MIB)


class TestVirtualMemory:
    def test_map_and_translate(self):
        pt = PageTable(4096)
        pt.map(0x10000, 0x400000, 8192)
        assert pt.translate(0x10000) == 0x400000
        assert pt.translate(0x11FFF) == 0x401FFF
        with pytest.raises(TranslationError):
            pt.translate(0x12000)

    def test_overlapping_mapping_rejected(self):
        pt = PageTable(4096)
        pt.map(0x10000, 0x400000, 8192)
        with pytest.raises(ValueError):
            pt.map(0x11000, 0x800000, 4096)

    def test_unaligned_mapping_rejected(self):
        pt = PageTable(4096)
        with pytest.raises(ValueError):
            pt.map(0x100, 0x400000, 4096)

    def test_translate_range_across_mappings(self):
        pt = PageTable(4096)
        pt.map(0x10000, 0x400000, 4096)
        pt.map(0x11000, 0x800000, 4096)
        extents = pt.translate_range(0x10800, 4096)
        assert extents == [(0x400800, 2048), (0x800000, 2048)]

    def test_translate_range_detects_hole(self):
        pt = PageTable(4096)
        pt.map(0x10000, 0x400000, 4096)
        with pytest.raises(TranslationError):
            pt.translate_range(0x10800, 8192)

    def test_unmap(self):
        pt = PageTable(4096)
        pt.map(0x10000, 0x400000, 4096)
        pt.unmap(0x10000)
        with pytest.raises(TranslationError):
            pt.translate(0x10000)
        with pytest.raises(ValueError):
            pt.unmap(0x999000)

    def test_virtual_memory_contiguity_check(self):
        scattered = VirtualMemory()
        base = scattered.map_frames([0x400000, 0x800000], frame_bytes=2 * MIB)
        assert not scattered.is_physically_contiguous(base, 4 * MIB)
        adjacent = VirtualMemory()
        base2 = adjacent.map_frames([0x400000, 0x400000 + 2 * MIB], frame_bytes=2 * MIB)
        assert adjacent.is_physically_contiguous(base2, 4 * MIB)

    def test_map_frames_sequential_virtual_layout(self):
        vm = VirtualMemory()
        base_a = vm.map_frames([0x0], frame_bytes=2 * MIB)
        base_b = vm.map_frames([0x200000], frame_bytes=2 * MIB)
        assert base_b == base_a + 2 * MIB
        assert vm.translate(base_b) == 0x200000
