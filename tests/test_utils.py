"""Tests for the utility layer: RNG, histograms and statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.histogram import BucketHistogram, IDLE_BUCKETS
from repro.utils.rng import DeterministicRng
from repro.utils.stats import (
    Counter,
    MovingAverage,
    RateMeter,
    WindowedStat,
    geometric_mean,
    harmonic_mean,
)


class TestDeterministicRng:
    def test_same_seed_same_stream_reproduces(self):
        a = DeterministicRng(42, "traffic")
        b = DeterministicRng(42, "traffic")
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_different_streams_differ(self):
        a = DeterministicRng(42, "traffic")
        b = DeterministicRng(42, "other")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1, "s")
        b = DeterministicRng(2, "s")
        assert [a.randint(0, 100) for _ in range(10)] != [b.randint(0, 100) for _ in range(10)]

    def test_spawn_is_deterministic(self):
        a = DeterministicRng(7, "sys").spawn("core0")
        b = DeterministicRng(7, "sys").spawn("core0")
        assert a.random() == b.random()

    def test_coin_extremes(self):
        rng = DeterministicRng(1, "coin")
        assert not rng.coin(0.0)
        assert rng.coin(1.0)

    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_coin_probability_roughly_respected(self, p):
        rng = DeterministicRng(3, f"coin{p}")
        hits = sum(rng.coin(p) for _ in range(2000))
        assert abs(hits / 2000 - p) < 0.12

    def test_randrange_bounds(self):
        rng = DeterministicRng(5, "rr")
        for _ in range(100):
            assert 0 <= rng.randrange(7) < 7

    def test_numpy_seed_is_32bit(self):
        seed = DeterministicRng(9, "np").numpy_seed()
        assert 0 <= seed < 2 ** 32


class TestBucketHistogram:
    def test_bucket_index_boundaries(self):
        h = BucketHistogram()
        assert h.bucket_index(1) == 0
        assert h.bucket_index(9) == 0
        assert h.bucket_index(10) == 1
        assert h.bucket_index(249) == 2
        assert h.bucket_index(250) == 3
        assert h.bucket_index(10_000) == len(IDLE_BUCKETS)

    def test_add_uses_value_as_weight_by_default(self):
        h = BucketHistogram()
        h.add(300)
        assert h.weights[h.bucket_index(300)] == 300
        assert h.total_count == 1

    def test_fractions_sum_to_one_with_extra_total(self):
        h = BucketHistogram()
        h.add(5)
        h.add(500)
        fractions = h.fractions(extra_total=495)
        assert sum(fractions.values()) == pytest.approx((5 + 500) / 1000)

    def test_merge(self):
        a, b = BucketHistogram(), BucketHistogram()
        a.add(5)
        b.add(5)
        b.add(2000)
        a.merge(b)
        assert a.total_count == 3
        assert a.weights[0] == 10

    def test_merge_rejects_different_buckets(self):
        a = BucketHistogram()
        b = BucketHistogram(bounds=(1, 2), labels=("a", "b", "c"))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_label_count_must_match(self):
        with pytest.raises(ValueError):
            BucketHistogram(bounds=(1, 2), labels=("only", "two"))

    @given(st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=50))
    def test_total_weight_equals_sum_of_values(self, values):
        h = BucketHistogram()
        for v in values:
            h.add(v)
        assert h.total_weight == sum(values)


class TestStatsHelpers:
    def test_counter(self):
        c = Counter()
        c.add("reads")
        c.add("reads", 4)
        assert c["reads"] == 5
        assert "reads" in c
        assert c["missing"] == 0

    def test_moving_average_window(self):
        m = MovingAverage(window=3)
        for v in (1, 2, 3, 4):
            m.add(v)
        assert m.value == pytest.approx(3.0)
        assert len(m) == 3

    def test_moving_average_rejects_bad_window(self):
        with pytest.raises(ValueError):
            MovingAverage(0)

    def test_rate_meter(self):
        r = RateMeter()
        r.record(10, 64)
        r.record(20, 64)
        assert r.rate() == pytest.approx(128 / 11)
        assert r.rate(total_cycles=128) == pytest.approx(1.0)

    def test_windowed_stat_merge(self):
        a, b = WindowedStat(), WindowedStat()
        a.add(1)
        a.add(3)
        b.add(10)
        a.merge(b)
        assert a.count == 3
        assert a.minimum == 1
        assert a.maximum == 10
        assert a.mean == pytest.approx(14 / 3)

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_harmonic_mean(self):
        assert harmonic_mean([1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 6]) == pytest.approx(3.0)
        with pytest.raises(ValueError):
            harmonic_mean([0.0])
