"""Tests for the fault-tolerant sweep service behind the sweep facade.

The crash/hang points below MUST only run on the supervised path (two or
more workers): on the serial in-process path an ``os._exit`` would kill
the test process itself.  Each such test therefore submits at least two
pending points with ``processes=2``.
"""

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.experiments.sweeprunner import (
    CORRUPT_MARKER,
    FaultPlan,
    RunLedger,
    SweepCache,
    SweepOptions,
    SweepPointsFailed,
    lease_counts,
    make_task,
    run_sweep,
    run_sweep_outcome,
)
from repro.experiments.sweeprunner import ledger as ledger_module
from repro.experiments.sweeprunner import selftest
from repro.experiments.sweeprunner.tasks import (
    describe_key_derivation,
    sweep_id,
)


def _ok(value: int) -> dict:
    return {"value": value, "result": value * 2}


def _crash_once(value: int, marker: str) -> dict:
    """First execution dies without reporting; the retry succeeds."""
    path = Path(marker)
    if not path.exists():
        path.write_text("crashed")
        os._exit(1)
    return {"value": value, "recovered": True}


def _hang_once(value: int, marker: str) -> dict:
    """First execution hangs past any timeout; the retry succeeds."""
    path = Path(marker)
    if not path.exists():
        path.write_text("hung")
        time.sleep(600)
    return {"value": value, "recovered": True}


def _corrupt_once(value: int, marker: str) -> dict:
    """First execution returns a row that fails integrity validation."""
    path = Path(marker)
    if not path.exists():
        path.write_text("corrupt")
        return {CORRUPT_MARKER: True}
    return {"value": value, "recovered": True}


def _always_fails(value: int) -> dict:
    raise ValueError(f"point {value} is broken")


def _tally(value: int, tally: str) -> dict:
    with open(tally, "a") as handle:
        handle.write(f"{value}\n")
    return {"value": value}


def _interrupt_on(value: int) -> dict:
    if value == 1:
        raise KeyboardInterrupt
    return {"value": value}


class TestStoreValidation:
    """Satellite: validation precedes the hit counter; corrupt files are
    quarantined instead of poisoning every future load."""

    def _seed(self, tmp_path, payload: str):
        cache = SweepCache(tmp_path)
        task = make_task(_ok, {"value": 1})
        (tmp_path / f"{task.cache_key()}.json").write_text(payload)
        return cache, task

    def test_null_row_is_miss_and_quarantined(self, tmp_path):
        cache, task = self._seed(tmp_path, json.dumps({"row": None}))
        assert cache.load(task) is None
        assert (cache.hits, cache.misses, cache.quarantined) == (0, 1, 1)
        assert not list(tmp_path.glob("*.json"))
        assert len(list(tmp_path.glob("*.corrupt"))) == 1

    def test_non_dict_entry_quarantined(self, tmp_path):
        cache, task = self._seed(tmp_path, json.dumps([1, 2, 3]))
        assert cache.load(task) is None
        assert cache.quarantined == 1

    def test_non_dict_row_quarantined(self, tmp_path):
        cache, task = self._seed(tmp_path, json.dumps({"row": [1]}))
        assert cache.load(task) is None
        assert cache.quarantined == 1

    def test_quarantined_key_recomputes_once(self, tmp_path):
        cache, task = self._seed(tmp_path, "{torn")
        assert cache.load(task) is None
        # The poisoned file is out of the namespace: storing works again.
        assert cache.store(task, {"value": 1}) is True
        assert cache.load(task) == {"value": 1}
        assert cache.hits == 1


class TestLedger:
    def test_replay_counts_leases_and_done(self, tmp_path):
        path = tmp_path / "sweep-abc.jsonl"
        journal = RunLedger(path)
        journal.append_queued(["k1", "k2"], {"points": 2})
        journal.append_leased("k1", 1)
        journal.append_done("k1", 1)
        journal.append_leased("k2", 1)
        journal.append_failed("k2", 1, "crash", "", "boom")
        journal.append_leased("k2", 2)
        journal.close()

        replayed = RunLedger(path)
        assert replayed.resumed
        assert replayed.record("k1").done
        assert replayed.record("k2").leases == 2
        assert replayed.record("k2").failures[0]["kind"] == "crash"
        # One lease beyond the recorded failures: an interrupted run.
        assert replayed.record("k2").interrupted
        replayed.close()
        assert lease_counts(path) == {"k1": 1, "k2": 2}

    def test_replay_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "sweep-torn.jsonl"
        journal = RunLedger(path)
        journal.append_leased("k1", 1)
        journal.close()
        with path.open("a") as handle:
            handle.write('{"event": "done", "key": "k1"')  # no newline, torn
        replayed = RunLedger(path)
        assert replayed.torn_lines == 1
        assert replayed.record("k1").leases == 1
        assert not replayed.record("k1").done
        replayed.close()


class TestSupervisedRecovery:
    def test_worker_crash_respawned_and_retried(self, tmp_path):
        marker = tmp_path / "crash.marker"
        params = [{"value": 0, "marker": str(marker)},
                  {"value": 1, "marker": str(marker)}]
        outcome = run_sweep_outcome(
            _crash_once, params,
            options=SweepOptions(processes=2, cache_dir="", journal=False,
                                 max_retries=2, retry_backoff=0.01))
        assert outcome.ok, outcome.failure_report()
        assert len(outcome.rows) == 2
        assert outcome.stats.crashes >= 1
        assert outcome.stats.worker_respawns >= 1
        assert outcome.stats.retries >= 1

    def test_hung_worker_killed_on_timeout(self, tmp_path):
        marker = tmp_path / "hang.marker"
        params = [{"value": 0, "marker": str(marker)},
                  {"value": 1, "marker": str(marker)}]
        outcome = run_sweep_outcome(
            _hang_once, params,
            options=SweepOptions(processes=2, cache_dir="", journal=False,
                                 max_retries=2, task_timeout=1.0,
                                 retry_backoff=0.01))
        assert outcome.ok, outcome.failure_report()
        assert outcome.stats.timeouts >= 1
        assert outcome.stats.worker_respawns >= 1

    def test_corrupt_row_rejected_and_retried(self, tmp_path):
        marker = tmp_path / "corrupt.marker"
        outcome = run_sweep_outcome(
            _corrupt_once, [{"value": 0, "marker": str(marker)}],
            options=SweepOptions(processes=1, cache_dir="", journal=False,
                                 max_retries=2, retry_backoff=0.01))
        assert outcome.ok, outcome.failure_report()
        assert outcome.stats.corrupt_rows >= 1
        assert outcome.rows[0]["recovered"] is True


class TestGracefulDegradation:
    def test_exhausted_retries_reported_not_raised(self, tmp_path, capsys):
        params = [{"value": 0}, {"value": 1}]
        rows = run_sweep(
            _always_fails, params,
            options=SweepOptions(processes=1, cache_dir="", journal=False,
                                 max_retries=1, retry_backoff=0.0,
                                 strict=False))
        assert rows == []
        err = capsys.readouterr().err
        assert "failed" in err and "ValueError" in err

    def test_strict_mode_raises_with_outcome(self):
        with pytest.raises(SweepPointsFailed) as excinfo:
            run_sweep(_always_fails, [{"value": 3}],
                      options=SweepOptions(processes=1, cache_dir="",
                                           journal=False, max_retries=1,
                                           retry_backoff=0.0, strict=True))
        outcome = excinfo.value.outcome
        assert not outcome.ok
        failure = outcome.failures[0]
        assert failure.error_type == "ValueError"
        assert failure.attempts == 2  # 1 + max_retries executions, no more

    def test_strict_env_flips_default(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SWEEP_STRICT", "0")
        rows = run_sweep(_always_fails, [{"value": 4}],
                         options=SweepOptions(processes=1, cache_dir="",
                                              journal=False, max_retries=0))
        assert rows == []
        assert "sweep degraded" in capsys.readouterr().err

    def test_partial_rows_survive_failures(self, tmp_path, capsys):
        tally = tmp_path / "tally.txt"
        params = [{"value": 0, "tally": str(tally)}]
        rows = run_sweep(_tally, params,
                         options=SweepOptions(processes=1, cache_dir="",
                                              journal=False, strict=False))
        assert rows == [{"value": 0}]


class TestDedupe:
    def test_identical_params_execute_once(self, tmp_path):
        tally = tmp_path / "tally.txt"
        params = [{"value": 7, "tally": str(tally)}] * 3
        rows = run_sweep(_tally, params,
                         options=SweepOptions(processes=1, cache_dir="",
                                              journal=False))
        assert rows == [{"value": 7}] * 3
        assert tally.read_text().splitlines() == ["7"]


class TestDurability:
    def test_ledger_dir_without_cache_still_durable(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
        options = SweepOptions(processes=1, ledger_dir=tmp_path / "journal")
        first = run_sweep_outcome(_ok, [{"value": 5}], options=options)
        assert first.ok and first.stats.cache_hits == 0
        assert first.ledger_path is not None and first.ledger_path.exists()
        assert list((tmp_path / "journal" / "store").glob("*.json"))
        second = run_sweep_outcome(_ok, [{"value": 5}], options=options)
        assert second.rows == first.rows
        assert second.stats.cache_hits == 1
        assert second.stats.executed == 0

    def test_interrupted_lease_counts_against_budget(self, tmp_path):
        # Simulate a driver that died right after journaling two leases:
        # the replayed attempts count toward 1 + max_retries.
        task = make_task(_always_fails, {"value": 9})
        options = SweepOptions(processes=1, ledger_dir=tmp_path,
                               max_retries=2, retry_backoff=0.0,
                               strict=False)
        ledger_file = ledger_module.ledger_path(tmp_path, sweep_id([task]))
        journal = RunLedger(ledger_file)
        journal.append_queued([task.cache_key()], {"points": 1})
        journal.append_leased(task.cache_key(), 1)
        journal.append_leased(task.cache_key(), 2)
        journal.close()

        outcome = run_sweep_outcome(_always_fails, [{"value": 9}],
                                    options=options)
        assert not outcome.ok
        assert outcome.stats.resumed
        # Two interrupted leases replayed + one live execution == 3 == budget.
        assert lease_counts(outcome.ledger_path)[task.cache_key()] == 3


class TestKeyboardInterrupt:
    def test_serial_interrupt_prints_resume_hint(self, tmp_path, capsys):
        params = [{"value": 0}, {"value": 1}]
        with pytest.raises(KeyboardInterrupt):
            run_sweep(_interrupt_on, params,
                      options=SweepOptions(processes=1,
                                           cache_dir=tmp_path / "cache"))
        err = capsys.readouterr().err
        assert "sweep interrupted" in err
        assert "1/2 rows journaled" in err
        assert "resume" in err
        # The completed row is durable: a re-run replays it from the store.
        assert len(list((tmp_path / "cache").glob("*.json"))) == 1

    def test_interrupt_without_journal_names_the_knob(self, capsys):
        with pytest.raises(KeyboardInterrupt):
            run_sweep(_interrupt_on, [{"value": 1}],
                      options=SweepOptions(processes=1, cache_dir="",
                                           journal=False))
        err = capsys.readouterr().err
        assert "REPRO_SWEEP_CACHE" in err


class TestSpawnKeyDerivation:
    """Satellite: cache-key environment invalidation holds under spawn.

    A spawn-context worker re-imports the world from scratch; its derived
    environment axes and code fingerprint must match the driver's, or
    cached rows would never replay (or worse, replay stale)."""

    def test_spawn_worker_derives_identical_keys(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLATFORM", "hbm2")
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        local = describe_key_derivation({"value": 11})
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            remote = pool.apply(describe_key_derivation, ({"value": 11},))
        assert remote == local

    def test_spawn_worker_sees_env_change(self, monkeypatch):
        monkeypatch.delenv("REPRO_PLATFORM", raising=False)
        baseline = describe_key_derivation({"value": 11})
        monkeypatch.setenv("REPRO_PLATFORM", "hbm2")
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            retargeted = pool.apply(describe_key_derivation, ({"value": 11},))
        assert retargeted["environment"] != baseline["environment"]
        assert retargeted["key"] != baseline["key"]


class TestRecoveryProof:
    """The ISSUE's acceptance bar: >=200 points, ~5% injected faults, one
    hard driver kill, bit-identical resume, lease bound held."""

    def test_crash_fault_resume_proof(self, tmp_path):
        report = selftest.run_proof(
            points=200, fault_rate=0.05, seed=7, kill_after=15, workers=4,
            max_retries=3, task_timeout=1.5, spin=500, sleep=0.004,
            store_dir=tmp_path, verbose=False)
        assert report["ok"], report
        assert report["rows_match"]
        assert report["failures"] == 0
        assert report["lease_bound_held"]
        assert report["max_leases_observed"] <= 1 + 3
