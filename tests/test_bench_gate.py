"""The benchmark regression gate: per-variant gating and baseline updates.

``benchmarks/`` is not a package, so the gate script is loaded by path and
driven with synthetic reports — the gate's verdict logic (per-variant hard
gates, skip semantics for missing variants, ``--update-baseline``) must not
depend on running the actual benchmark.
"""

import importlib.util
import json
import sys
from pathlib import Path

_GATE_PATH = (Path(__file__).resolve().parent.parent / "benchmarks"
              / "check_bench_regression.py")
_spec = importlib.util.spec_from_file_location("check_bench_regression",
                                               _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
# dataclass decoration resolves the defining module through sys.modules, so
# the path-loaded module must be registered before execution.
sys.modules[_spec.name] = gate
_spec.loader.exec_module(gate)


def _report(cycle=10000.0, event=20000.0, kernel=15000.0, sweep_seconds=2.0,
            platforms=True):
    report = {
        "largest_point": {
            "cycle": {"cycles_per_second": cycle},
            "event": {"cycles_per_second": event},
        },
        "fig14_sweep": {
            "points": 4,
            "cycles_per_point": 1000,
            "sweep_runner_event_engine_seconds": sweep_seconds,
        },
    }
    if kernel is not None:
        report["largest_point"]["kernel"] = {"cycles_per_second": kernel}
    if platforms:
        entry = {
            "cycle": {"cycles_per_second": cycle},
            "event": {"cycles_per_second": event},
            "event_vs_cycle_speedup": event / cycle,
        }
        if kernel is not None:
            entry["kernel"] = {"cycles_per_second": kernel}
        report["platforms"] = {"cycles": 1000, "ddr4-2400": entry}
    return report


class TestGateVerdicts:
    def test_identical_reports_pass(self):
        assert gate.check(_report(), _report(), tolerance=0.30) == 0

    def test_cycle_regression_fails(self):
        fresh = _report(cycle=10000.0 * 0.5)
        assert gate.check(fresh, _report(), tolerance=0.30) == 1

    def test_kernel_regression_fails_independently(self):
        # Only the kernel variant dropped; cycle/event are unchanged.
        fresh = _report(kernel=15000.0 * 0.5)
        assert gate.check(fresh, _report(), tolerance=0.30) == 1

    def test_platform_variant_gated_independently(self):
        fresh = _report()
        fresh["platforms"]["ddr4-2400"]["kernel"]["cycles_per_second"] *= 0.5
        assert gate.check(fresh, _report(), tolerance=0.30) == 1

    def test_missing_kernel_variant_skipped(self):
        # A no-numpy environment records no kernel rows; the gate must not
        # fail against a baseline that has them (and vice versa).
        assert gate.check(_report(kernel=None), _report(),
                          tolerance=0.30) == 0
        assert gate.check(_report(), _report(kernel=None),
                          tolerance=0.30) == 0

    def test_within_tolerance_passes(self):
        fresh = _report(cycle=10000.0 * 0.75, event=20000.0 * 0.75,
                        kernel=15000.0 * 0.75)
        assert gate.check(fresh, _report(), tolerance=0.30) == 0


class TestUpdateBaseline:
    def test_update_baseline_rewrites_file(self, tmp_path, capsys):
        fresh_path = tmp_path / "fresh.json"
        baseline_path = tmp_path / "baseline.json"
        fresh = _report(event=40000.0)
        fresh_path.write_text(json.dumps(_report(event=40000.0)))
        baseline_path.write_text(json.dumps(_report()))
        status = gate.main(["--fresh", str(fresh_path),
                            "--baseline", str(baseline_path),
                            "--update-baseline"])
        assert status == 0
        assert json.loads(baseline_path.read_text()) == fresh
        assert "baseline updated" in capsys.readouterr().out

    def test_update_baseline_creates_missing_file(self, tmp_path):
        fresh_path = tmp_path / "fresh.json"
        baseline_path = tmp_path / "baseline.json"
        fresh_path.write_text(json.dumps(_report()))
        status = gate.main(["--fresh", str(fresh_path),
                            "--baseline", str(baseline_path),
                            "--update-baseline"])
        assert status == 0
        assert json.loads(baseline_path.read_text()) == _report()

    def test_regression_still_fails_without_flag(self, tmp_path):
        fresh_path = tmp_path / "fresh.json"
        baseline_path = tmp_path / "baseline.json"
        fresh_path.write_text(json.dumps(_report(event=100.0)))
        baseline_path.write_text(json.dumps(_report()))
        status = gate.main(["--fresh", str(fresh_path),
                            "--baseline", str(baseline_path)])
        assert status == 1
