"""Tests for the NDA hardware model: ISA, PE, write buffer, FSM, throttling,
rank controller and the host-side launch path."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DramOrgConfig, DramTimingConfig, NdaConfig
from repro.dram.commands import DramAddress
from repro.dram.device import DramSystem
from repro.memctrl.controller import ChannelController
from repro.nda.controller import NdaRankController, RankWorkItem
from repro.nda.fsm import FsmDivergenceError, ReplicatedFsm
from repro.nda.isa import NdaInstruction, NdaOpcode, OPCODE_TRAITS
from repro.nda.launch import NdaHostController
from repro.nda.pe import ProcessingElement
from repro.nda.throttle import (
    IssueIfIdlePolicy,
    NextRankPredictionPolicy,
    StochasticIssuePolicy,
    make_policy,
)
from repro.nda.write_buffer import NdaWriteBuffer
from repro.utils.rng import DeterministicRng

ORG = DramOrgConfig()
T = DramTimingConfig()


class TestIsa:
    def test_all_table_i_operations_present(self):
        names = {op.value for op in NdaOpcode}
        assert names == {"axpby", "axpbypcz", "axpy", "copy", "xmy",
                         "dot", "nrm2", "scal", "gemv"}

    def test_write_intensity_extremes(self):
        assert OPCODE_TRAITS[NdaOpcode.DOT].write_intensity == 0.0
        assert OPCODE_TRAITS[NdaOpcode.COPY].write_intensity == 0.5
        assert OPCODE_TRAITS[NdaOpcode.DOT].is_reduction
        assert not OPCODE_TRAITS[NdaOpcode.COPY].is_reduction

    def test_copy_is_most_write_intensive(self):
        copy_intensity = OPCODE_TRAITS[NdaOpcode.COPY].write_intensity
        assert all(OPCODE_TRAITS[op].write_intensity <= copy_intensity
                   for op in NdaOpcode)

    def test_instruction_cache_block_accounting(self):
        instr = NdaInstruction(NdaOpcode.AXPY, num_elements=1024)
        assert instr.total_cache_blocks == 1024 * 4 // 64
        assert instr.read_cache_blocks == 2 * instr.total_cache_blocks
        assert instr.write_cache_blocks == instr.total_cache_blocks
        assert instr.dram_bytes == (instr.read_cache_blocks + instr.write_cache_blocks) * 64

    def test_dot_has_no_writes(self):
        instr = NdaInstruction(NdaOpcode.DOT, num_elements=1024)
        assert instr.write_cache_blocks == 0
        assert instr.fma_operations == 1024

    def test_gemv_accounting(self):
        instr = NdaInstruction(NdaOpcode.GEMV, num_elements=128, matrix_columns=1024)
        assert instr.fma_operations == 128 * 1024
        assert instr.read_cache_blocks > instr.total_cache_blocks

    def test_gemv_requires_columns(self):
        with pytest.raises(ValueError):
            NdaInstruction(NdaOpcode.GEMV, num_elements=128)

    def test_invalid_element_count(self):
        with pytest.raises(ValueError):
            NdaInstruction(NdaOpcode.COPY, num_elements=0)

    @given(st.integers(min_value=1, max_value=4096),
           st.integers(min_value=1, max_value=512))
    @settings(max_examples=50, deadline=None)
    def test_split_preserves_total_elements(self, elements, cache_blocks):
        instr = NdaInstruction(NdaOpcode.COPY, num_elements=elements)
        pieces = instr.split(cache_blocks)
        assert sum(p.num_elements for p in pieces) == elements
        assert all(p.opcode is NdaOpcode.COPY for p in pieces)
        per_piece = cache_blocks * instr.elements_per_cache_block
        assert all(p.num_elements <= per_piece for p in pieces)

    def test_split_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            NdaInstruction(NdaOpcode.COPY, num_elements=16).split(0)


class TestProcessingElement:
    def test_start_finish_accounting(self):
        pe = ProcessingElement(0)
        instr = NdaInstruction(NdaOpcode.AXPY, num_elements=2048)
        pe.start(instr)
        assert pe.busy
        pe.finish()
        assert not pe.busy
        assert pe.stats.instructions_executed == 1
        assert pe.stats.bytes_read == instr.read_cache_blocks * 64
        assert pe.stats.fma_operations > 0

    def test_double_start_rejected(self):
        pe = ProcessingElement(0)
        pe.start(NdaInstruction(NdaOpcode.COPY, num_elements=16))
        with pytest.raises(RuntimeError):
            pe.start(NdaInstruction(NdaOpcode.COPY, num_elements=16))

    def test_finish_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            ProcessingElement(0).finish()

    def test_batching_matches_buffer_size(self):
        pe = ProcessingElement(0)
        instr = NdaInstruction(NdaOpcode.COPY, num_elements=16 * 1024)  # 64 KiB
        # 64 KiB / 8 chips = 8 KiB per chip = 8 batches of the 1 KiB buffer.
        assert pe.batch_count(instr) == 8

    def test_compute_never_exceeds_memory_time(self):
        pe = ProcessingElement(0)
        instr = NdaInstruction(NdaOpcode.AXPBYPCZ, num_elements=4096)
        memory_cycles = instr.read_cache_blocks * 4  # one column per tCCD_S
        assert pe.compute_cycles(instr) <= memory_cycles


class TestWriteBuffer:
    def test_capacity_and_drain_watermark(self):
        wb = NdaWriteBuffer(capacity=4, drain_high_watermark=0.5)
        a = DramAddress(0, 0, 0, 0, 0, 0)
        assert wb.push(a)
        assert not wb.draining
        assert wb.push(a)
        assert wb.draining
        assert wb.push(a) and wb.push(a)
        assert wb.full
        assert not wb.push(a)
        assert wb.stall_cycles == 1

    def test_drain_clears_flag_at_low_watermark(self):
        wb = NdaWriteBuffer(capacity=4, drain_high_watermark=0.5, drain_low_watermark=0.25)
        a = DramAddress(0, 0, 0, 0, 0, 0)
        for _ in range(3):
            wb.push(a)
        while not wb.empty:
            wb.pop()
        assert not wb.draining
        assert wb.total_drained == 3

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            NdaWriteBuffer().pop()

    def test_force_drain(self):
        wb = NdaWriteBuffer(capacity=128)
        wb.push(DramAddress(0, 0, 0, 0, 0, 0))
        assert not wb.draining
        wb.force_drain()
        assert wb.draining

    def test_state_tuple_matches_fsm_view(self):
        wb = NdaWriteBuffer(capacity=8)
        wb.push(DramAddress(0, 0, 0, 0, 0, 0))
        assert wb.state_tuple() == (1, False)

    def test_invalid_watermarks(self):
        with pytest.raises(ValueError):
            NdaWriteBuffer(capacity=4, drain_high_watermark=0.1, drain_low_watermark=0.5)


class TestReplicatedFsm:
    def test_copies_stay_in_sync_through_full_lifecycle(self):
        fsm = ReplicatedFsm(0, 0)
        fsm.apply("launch", instruction_id=1, reads=4, writes=2)
        for _ in range(4):
            fsm.apply("read_issued")
        fsm.apply("write_buffered")
        fsm.apply("write_buffered")
        fsm.apply("drain_start")
        fsm.apply("write_drained")
        fsm.apply("write_drained")
        fsm.apply("complete")
        assert fsm.in_sync
        assert fsm.state.idle
        assert fsm.state.instructions_completed == 1
        assert fsm.events_applied == 11

    def test_divergence_detected(self):
        fsm = ReplicatedFsm(0, 0, check_every_event=False)
        fsm.apply("launch", instruction_id=1, reads=1, writes=0)
        fsm.apply_device_only("read_issued")
        assert not fsm.in_sync
        with pytest.raises(FsmDivergenceError):
            fsm.verify()

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedFsm(0, 0).apply("warp_drive")

    def test_storage_overhead_matches_paper(self):
        assert ReplicatedFsm.storage_overhead_bytes() == (40, 20)

    @given(st.lists(st.sampled_from(["read_issued", "write_buffered",
                                     "write_drained", "drain_start", "drain_end"]),
                    max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_sync_invariant_under_arbitrary_event_sequences(self, events):
        fsm = ReplicatedFsm(0, 1)
        fsm.apply("launch", instruction_id=7, reads=100, writes=100)
        for event in events:
            fsm.apply(event)
        assert fsm.in_sync


class TestThrottlePolicies:
    def test_issue_if_idle_always_allows(self):
        assert IssueIfIdlePolicy().allow_write(0, 0, 0)

    def test_stochastic_rate(self):
        policy = StochasticIssuePolicy(0.25, DeterministicRng(1, "st"))
        allowed = sum(policy.allow_write(0, 0, i) for i in range(4000))
        assert abs(allowed / 4000 - 0.25) < 0.05
        assert policy.attempts == 4000

    def test_stochastic_invalid_probability(self):
        with pytest.raises(ValueError):
            StochasticIssuePolicy(0.0, DeterministicRng(1, "st"))

    def test_next_rank_prediction_blocks_predicted_rank(self):
        class FakeController:
            def __init__(self, rank):
                self._rank = rank

            def oldest_pending_read_rank(self):
                return self._rank

        policy = NextRankPredictionPolicy({0: FakeController(1)})
        assert not policy.allow_write(0, 1, 0)   # predicted rank blocked
        assert policy.allow_write(0, 0, 0)       # other rank allowed
        assert policy.allow_write(1, 1, 0)       # unknown channel allowed
        assert 0.0 < policy.inhibit_rate() < 1.0

    def test_factory(self):
        rng = DeterministicRng(1, "f")
        assert isinstance(make_policy("issue_if_idle"), IssueIfIdlePolicy)
        assert isinstance(make_policy("stochastic", rng=rng), StochasticIssuePolicy)
        assert isinstance(make_policy("next_rank"), NextRankPredictionPolicy)
        with pytest.raises(ValueError):
            make_policy("stochastic")
        with pytest.raises(ValueError):
            make_policy("nonsense")


def _work_item(opcode=NdaOpcode.COPY, elements=512, on_complete=None):
    instr = NdaInstruction(opcode, num_elements=elements)
    return RankWorkItem(
        instruction=instr,
        operand_banks=[0, 1][:max(1, instr.traits.input_vectors)],
        operand_base_rows=[0, 0][:max(1, instr.traits.input_vectors)],
        output_bank=2 if instr.traits.output_vectors else None,
        output_base_row=0 if instr.traits.output_vectors else None,
        on_complete=on_complete,
    )


class TestNdaRankController:
    def make(self, **kwargs):
        dram = DramSystem(ORG, T)
        controller = NdaRankController(0, 0, dram, NdaConfig(), **kwargs)
        return dram, controller

    def run(self, controller, cycles, start=0):
        for now in range(start, start + cycles):
            controller.try_issue(now)
            controller.post_cycle(now)
        return start + cycles

    def test_copy_instruction_completes_with_equal_reads_and_writes(self):
        done = []
        dram, controller = self.make()
        controller.enqueue(_work_item(NdaOpcode.COPY, 512, done.append))
        self.run(controller, 1500)
        assert done, "instruction did not complete"
        assert controller.instructions_completed == 1
        assert controller.bytes_read == 512 * 4
        assert controller.bytes_written == 512 * 4
        assert controller.fsm.in_sync

    def test_dot_instruction_reads_two_vectors_writes_nothing(self):
        dram, controller = self.make()
        controller.enqueue(_work_item(NdaOpcode.DOT, 512))
        self.run(controller, 1500)
        assert controller.instructions_completed == 1
        assert controller.bytes_read == 2 * 512 * 4
        assert controller.bytes_written == 0
        assert dram.counts.nda_writes == 0

    def test_throttle_blocks_all_writes(self):
        class NeverWrite(IssueIfIdlePolicy):
            def allow_write(self, channel, rank, now):
                return False

        dram, controller = self.make(throttle=NeverWrite())
        controller.enqueue(_work_item(NdaOpcode.COPY, 256))
        self.run(controller, 1200)
        assert controller.instructions_completed == 0
        assert controller.bytes_written == 0
        assert controller.cycles_blocked_by_throttle > 0

    def test_host_pending_bank_blocks_nda_row_commands(self):
        dram, controller = self.make(
            host_pending_to_bank=lambda ch, rk, bank: True
        )
        controller.enqueue(_work_item(NdaOpcode.DOT, 128))
        self.run(controller, 500)
        # Every row command defers to the (permanently) pending host request.
        assert controller.instructions_completed == 0
        assert controller.cycles_blocked_by_host > 0

    def test_queue_and_busy_reporting(self):
        dram, controller = self.make()
        assert not controller.busy
        controller.enqueue(_work_item(NdaOpcode.COPY, 128))
        controller.enqueue(_work_item(NdaOpcode.COPY, 128))
        assert controller.pending_instructions == 2
        assert controller.busy
        stats = controller.stats()
        assert stats["instructions_completed"] == 0

    def test_multiple_instructions_execute_in_order(self):
        order = []
        dram, controller = self.make()
        controller.enqueue(_work_item(NdaOpcode.DOT, 128, lambda c: order.append("first")))
        controller.enqueue(_work_item(NdaOpcode.COPY, 128, lambda c: order.append("second")))
        self.run(controller, 3000)
        assert order == ["first", "second"]


class TestNdaHostController:
    def make(self, ranks=2):
        org = DramOrgConfig(ranks_per_channel=ranks)
        dram = DramSystem(org, T)
        channels = {ch: ChannelController(ch, dram) for ch in range(org.channels)}
        rank_controllers = {
            (ch, rk): NdaRankController(ch, rk, dram)
            for ch in range(org.channels) for rk in range(org.ranks_per_channel)
        }
        host = NdaHostController(dram, channels, rank_controllers)
        return dram, channels, rank_controllers, host

    def run(self, channels, rank_controllers, host, cycles):
        for now in range(cycles):
            for mc in channels.values():
                mc.tick(now)
            host.tick(now)
            for rc in rank_controllers.values():
                rc.try_issue(now)
                rc.post_cycle(now)

    def test_operation_split_across_all_ranks(self):
        dram, channels, rcs, host = self.make()
        op = host.submit_kernel(NdaOpcode.DOT, total_elements=4096, cache_blocks=256)
        self.run(channels, rcs, host, 4000)
        assert op.completed_cycle is not None
        assert all(rc.instructions_completed >= 1 for rc in rcs.values())
        assert host.operations_completed == 1
        assert host.idle

    def test_launch_packets_consume_host_writes(self):
        dram, channels, rcs, host = self.make()
        host.submit_kernel(NdaOpcode.DOT, total_elements=4096, cache_blocks=1)
        self.run(channels, rcs, host, 300)
        assert host.packets_sent > 4  # one per instruction per rank
        assert sum(mc.counters["write_enqueued"] for mc in channels.values()) > 4

    def test_fine_grain_needs_more_packets_than_coarse(self):
        dram1, ch1, rc1, host1 = self.make()
        host1.submit_kernel(NdaOpcode.DOT, total_elements=4096, cache_blocks=1)
        self.run(ch1, rc1, host1, 200)
        dram2, ch2, rc2, host2 = self.make()
        host2.submit_kernel(NdaOpcode.DOT, total_elements=4096, cache_blocks=1024)
        self.run(ch2, rc2, host2, 200)
        assert (host1.packets_sent + len(host1._pending_packets)
                > host2.packets_sent + len(host2._pending_packets))

    def test_blocking_operation_serializes_launches(self):
        dram, channels, rcs, host = self.make()
        first = host.submit_kernel(NdaOpcode.COPY, total_elements=2048)
        second = host.submit_kernel(NdaOpcode.COPY, total_elements=2048)
        self.run(channels, rcs, host, 50)
        assert first.launched_cycle is not None
        assert second.launched_cycle is None  # waits for the blocking op

    def test_async_operations_overlap(self):
        dram, channels, rcs, host = self.make()
        first = host.submit_kernel(NdaOpcode.COPY, total_elements=2048, async_launch=True)
        second = host.submit_kernel(NdaOpcode.COPY, total_elements=2048, async_launch=True)
        self.run(channels, rcs, host, 50)
        assert first.launched_cycle is not None
        assert second.launched_cycle is not None

    def test_bypassing_channel_for_launches(self):
        org = DramOrgConfig()
        dram = DramSystem(org, T)
        channels = {ch: ChannelController(ch, dram) for ch in range(org.channels)}
        rcs = {(ch, rk): NdaRankController(ch, rk, dram)
               for ch in range(org.channels) for rk in range(org.ranks_per_channel)}
        host = NdaHostController(dram, channels, rcs, launch_packets_use_channel=False)
        host.submit_kernel(NdaOpcode.DOT, total_elements=1024)
        host.tick(0)
        assert host.packets_sent == 0
        assert all(rc.pending_instructions >= 1 for rc in rcs.values())

    def test_stats(self):
        dram, channels, rcs, host = self.make()
        host.submit_kernel(NdaOpcode.DOT, total_elements=1024)
        host.tick(0)
        stats = host.stats()
        assert stats["operations_launched"] == 1
