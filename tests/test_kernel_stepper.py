"""Micro-oracles for the resident multi-cycle stepper and compiled core.

The system-level suites (engine equivalence, snapshot fuzz) prove the
stepper end-to-end; these tests localize failures to the fused core:

* **compiled vs pure-Python differential** — ``repro_step`` and ``py_step``
  on identical live state must return the same status, the same issue
  evidence, and leave bit-identical core arrays;
* **fused window vs scalar single-cycle steps** — one ``step(t, t+K)``
  call must equal K successive ``step(t', t'+1)`` calls: same exit, same
  retry cursors, same settled state (the whole point of the fused loop is
  that it changes dispatch count, never results);
* **boundary-exit pin** — the fused call hands control back at *exactly*
  the first cycle holding an issuable request, checked against an
  independent scalar FR-FCFS scan (with the Python settlement replay) over
  every cycle of the window;
* **snapshot through a stepper-active run** — checkpointing a stepper run
  perturbs nothing, restores bit-identically, and restoring under a
  different stepper configuration is refused with an actionable error.
"""

import dataclasses
import random

import pytest

from repro.kernel import compiled_available, kernel_available

if not kernel_available():
    pytest.skip("numpy unavailable: kernel backend off",
                allow_module_level=True)

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem
from repro.experiments.common import resolve_config
from repro.kernel.core import layout
from repro.kernel.core.pycore import py_step
from repro.kernel.scan import _KIND_COMMANDS
from repro.memctrl.frfcfs import FrFcfsScheduler
from repro.memctrl.request import set_request_id_watermark
from repro.nda.isa import NdaOpcode, set_instruction_id_watermark
from repro.nda.launch import set_operation_id_watermark
from repro.snapshot import (
    SnapshotError,
    dumps,
    loads,
    restore_system,
    snapshot_system,
)

requires_compiled = pytest.mark.skipif(
    not compiled_available(), reason="no C toolchain: compiled core off")


def _stepper_system(seed):
    """A stepper-active system advanced to a seed-dependent live state."""
    rng = random.Random(seed)
    mode, mix, opcode = rng.choice([
        (AccessMode.HOST_ONLY, "mix1", None),
        (AccessMode.SHARED, "mix5", NdaOpcode.AXPY),
        (AccessMode.BANK_PARTITIONED, "mix1", NdaOpcode.DOT),
        (AccessMode.RANK_PARTITIONED, "mix8", NdaOpcode.COPY),
    ])
    platform = rng.choice([None, "ddr4-3200", "ddr5-4800"])
    system = ChopimSystem(
        config=resolve_config(platform, rng.choice([1, 2]), 2),
        mode=mode, mix=mix, engine="event", backend="kernel")
    if opcode is not None:
        system.set_nda_workload(opcode, elements_per_rank=1 << 12)
    system.run(cycles=rng.randrange(300, 900), warmup=0)
    assert system.kernel_stepper is not None
    return system


def _save_core(state):
    """Copies of every mutable core array (the full repro_step footprint)."""
    return {name: getattr(state, name).copy()
            for name in layout.POINTER_CELLS}


def _restore_core(state, saved):
    for name, array in saved.items():
        getattr(state, name)[:] = array


def _core_equal(state, saved):
    return {name: np.array_equal(getattr(state, name), saved[name])
            for name in layout.POINTER_CELLS}


def _compiled_step(stepper, t_start, t_end):
    """One raw ``repro_step`` call; returns (status, out[0:11])."""
    import ctypes

    out = np.zeros(11, dtype=np.int64)
    status = stepper._lib.repro_step(
        stepper._ctx_ptr, t_start, t_end,
        out.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)))
    return status, out


def _python_step(stepper, t_start, t_end):
    out = [0] * 11
    status = py_step(stepper.state, t_start, t_end, out)
    return status, np.asarray(out, dtype=np.int64)


class TestCompiledVsPythonStep:
    """``repro_step`` and ``py_step`` are bit-identical twins."""

    @requires_compiled
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 7), offset=st.integers(0, 40),
           width=st.integers(1, 300))
    def test_status_evidence_and_state_agree(self, seed, offset, width):
        system = _stepper_system(seed)
        stepper = system.kernel_stepper
        stepper._sync_plans()
        state = stepper.state
        t = system.now + offset
        state.next_try[:] = t
        before = _save_core(state)

        status_c, out_c = _compiled_step(stepper, t, t + width)
        after_c = _save_core(state)

        _restore_core(state, before)
        status_py, out_py = _python_step(stepper, t, t + width)

        assert status_c == status_py
        if status_c == 1:
            assert np.array_equal(out_c, out_py), (
                f"issue evidence diverged: C={out_c.tolist()} "
                f"py={out_py.tolist()}")
        mismatch = [name for name, same in _core_equal(state, after_c).items()
                    if not same]
        assert not mismatch, f"core arrays diverged on {mismatch}"


class TestFusedVsScalarSteps:
    """step(t, t+K) == K single-cycle step(t', t'+1) calls."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 7), width=st.integers(1, 200))
    def test_fused_window_equals_single_cycle_loop(self, seed, width):
        system = _stepper_system(seed + 50)
        stepper = system.kernel_stepper
        stepper._sync_plans()
        state = stepper.state
        t = system.now
        state.next_try[:] = t
        before = _save_core(state)

        step = (_compiled_step if stepper.compiled else _python_step)
        status_fused, out_fused = step(stepper, t, t + width)
        after_fused = _save_core(state)

        _restore_core(state, before)
        status_scalar, out_scalar = 0, None
        cycle = t
        while cycle < t + width:
            status_scalar, out_scalar = step(stepper, cycle, cycle + 1)
            if status_scalar:
                break
            cycle += 1

        assert status_fused == status_scalar
        if status_fused == 1:
            assert np.array_equal(out_fused, out_scalar), (
                "fused and single-cycle runs disagree on the issue: "
                f"{out_fused.tolist()} vs {out_scalar.tolist()}")
        # Retry cursors may legitimately differ: the fused loop's cursors
        # are sound bounds derived once, the single-cycle loop re-derives
        # them per call — but the settled DRAM/plan state must match.
        mutable = [name for name in layout.POINTER_CELLS
                   if name != "next_try"]
        mismatch = [name for name in mutable
                    if not np.array_equal(getattr(state, name),
                                          after_fused[name])]
        assert not mismatch, f"settled state diverged on {mismatch}"


class TestBoundaryExitPin:
    """The fused call returns at exactly the first issuable cycle."""

    @pytest.mark.parametrize("seed", range(6))
    def test_exit_is_first_issuable_cycle(self, seed):
        system = _stepper_system(seed + 100)
        stepper = system.kernel_stepper
        stepper._sync_plans()
        state = stepper.state
        t = system.now
        width = 400
        state.next_try[:] = t
        before = _save_core(state)

        step = (_compiled_step if stepper.compiled else _python_step)
        status, out = step(stepper, t, t + width)
        exit_cycle = out[0] if status else t + width
        _restore_core(state, before)

        # Independent oracle: scalar FR-FCFS scan with the Python
        # settlement replay, cycle by cycle.  No cycle before the exit may
        # hold an issuable request; the exit cycle (on an issue exit) must
        # hold exactly the winner the core reported.
        scalar = FrFcfsScheduler(system.dram)
        controllers = list(system.channel_controllers.values())
        for cycle in range(t, exit_cycle):
            for controller in controllers:
                if controller.burst_settler is not None:
                    controller.burst_settler(cycle)
                for queue in (controller.read_queue, controller.write_queue):
                    pick, _, _ = scalar._select_bucketed(queue, cycle)
                    assert pick is None, (
                        f"scalar scan finds an issuable request at {cycle}, "
                        f"but the stepper ran through to {exit_cycle}")
        if status:
            channel, qsel = out[1], out[2]
            controller = system.channel_controllers[channel]
            if controller.burst_settler is not None:
                controller.burst_settler(exit_cycle)
            queue = (controller.write_queue if qsel
                     else controller.read_queue)
            pick, _, _ = scalar._select_bucketed(queue, exit_cycle)
            assert pick is not None, (
                "stepper exited claiming an issue but the scalar scan "
                f"finds nothing issuable at {exit_cycle}")
            request, command = pick
            arrays = controller.scheduler._arrays_for(queue)
            assert request.request_id == arrays.requests[out[3]].request_id
            assert command.kind == _KIND_COMMANDS[out[4]]
            if qsel == 1:
                read_pick, _, _ = scalar._select_bucketed(
                    controller.read_queue, exit_cycle)
                assert read_pick is None, (
                    "write won the window exit while the read queue was "
                    "issuable — read priority violated")


def _reset_watermarks():
    set_request_id_watermark(0)
    set_instruction_id_watermark(0)
    set_operation_id_watermark(0)


class TestStepperSnapshot:
    """Checkpoint/restore through a stepper-active run."""

    @staticmethod
    def _build():
        _reset_watermarks()
        system = ChopimSystem(config=resolve_config(None, 2, 2),
                              mode=AccessMode.BANK_PARTITIONED, mix="mix1",
                              engine="event", backend="kernel")
        system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 11)
        assert system.stepper_enabled
        return system

    def test_checkpointed_run_is_bit_identical(self):
        baseline = dataclasses.asdict(
            self._build().run(cycles=1200, warmup=100))
        texts = []
        chunked = dataclasses.asdict(
            self._build().run(cycles=1200, warmup=100,
                              checkpoint_hook=lambda s: texts.append(
                                  dumps(snapshot_system(s))),
                              checkpoint_every=400))
        assert chunked == baseline, "checkpointing perturbed the stepper run"
        assert texts, "no mid-run checkpoint was taken"
        for text in texts:
            restored = restore_system(loads(text))
            assert restored.stepper_enabled, (
                "restore dropped the stepper configuration")
            result = dataclasses.asdict(restored.finish_run())
            assert result == baseline, "restored stepper run diverged"

    def test_restore_refuses_stepper_mismatch(self, monkeypatch):
        system = self._build()
        system.run(cycles=300, warmup=0)
        payload = loads(dumps(snapshot_system(system)))
        monkeypatch.setenv("REPRO_DISABLE_STEPPER", "1")
        with pytest.raises(SnapshotError, match="stepper"):
            restore_system(payload)
