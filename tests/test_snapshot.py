"""Checkpointing suite: codec round-trips, envelope integrity, and the
snapshot/restore bit-exactness contract.

The heart of the suite is :class:`TestSnapshotRestoreEquivalence`: over a
seeded random sample of full system configurations (platform, geometry,
mode, throttle, workload) and every engine/backend leg, a run that
checkpoints mid-flight must produce a result identical — every field —
to an uninterrupted run, and a fresh system restored from any of those
checkpoints must finish to the same result.  This extends the repo's
cycle == event == burst == kernel equivalence contract with
"== checkpoint/restore".
"""

import dataclasses
import json
import random
from collections import deque

import pytest

from repro.config import default_config
from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem
from repro.experiments.common import resolve_config
from repro.kernel import kernel_available
from repro.memctrl.request import set_request_id_watermark
from repro.nda.isa import NdaOpcode, set_instruction_id_watermark
from repro.nda.launch import set_operation_id_watermark
from repro.snapshot import (
    SCHEMA_VERSION,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    decode,
    dumps,
    encode,
    loads,
    read_snapshot,
    restore_system,
    snapshot_system,
    write_snapshot,
)

_LEGS = [("cycle", "python"), ("event", "python")]
if kernel_available():
    _LEGS.append(("event", "kernel"))


def _reset_watermarks():
    set_request_id_watermark(0)
    set_instruction_id_watermark(0)
    set_operation_id_watermark(0)


# --------------------------------------------------------------------- #
# Codec: tagged encoding round-trips


class TestCodecRoundTrip:
    CASES = [
        None,
        True,
        False,
        0,
        -1,
        2 ** 80,                      # beyond float precision: must stay exact
        0.1,
        -2.5e300,
        "",
        "snapshot",
        [],
        [1, [2, [3, None]]],
        (),
        (1, (2, "x"), [3]),
        deque([1, 2, 3]),
        deque([4, 5], maxlen=8),      # maxlen must survive the round trip
        deque(maxlen=2),
        {"a": 1, "b": [2, (3,)]},
        {1: "one", (2, 3): "pair"},   # non-str keys take the tagged path
        {"__t": "sneaky"},            # a payload key colliding with the tag
        {"nested": {"__t": 1, "deq": deque([(1, 2)], maxlen=4)}},
    ]

    @pytest.mark.parametrize("value", CASES, ids=range(len(CASES)))
    def test_round_trip(self, value):
        restored = decode(encode(value))
        assert restored == value
        assert type(restored) is type(value)

    def test_deque_maxlen_preserved(self):
        restored = decode(encode(deque([1, 2], maxlen=5)))
        assert restored.maxlen == 5

    def test_encoded_form_is_pure_json(self):
        value = {"k": (1, deque([2], maxlen=3), {4: "x"})}
        assert json.loads(json.dumps(encode(value))) == encode(value)

    def test_rejects_unencodable_types(self):
        for bad in ({1, 2}, object(), b"bytes", complex(1, 2)):
            with pytest.raises(SnapshotError):
                encode(bad)

    def test_rejects_unknown_tag(self):
        with pytest.raises(SnapshotCorruptError):
            decode({"__t": "hologram", "items": []})

    def test_hypothesis_round_trip(self):
        """Property form of the round trip, when hypothesis is installed."""
        hyp = pytest.importorskip("hypothesis")
        st = pytest.importorskip("hypothesis.strategies")

        scalars = st.one_of(
            st.none(), st.booleans(), st.integers(),
            st.floats(allow_nan=False, allow_infinity=False), st.text())
        trees = st.recursive(
            scalars,
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.lists(children, max_size=4).map(tuple),
                st.lists(children, max_size=4).map(deque),
                st.dictionaries(st.text(), children, max_size=4),
            ),
            max_leaves=20)

        @hyp.given(trees)
        @hyp.settings(max_examples=150, deadline=None)
        def check(value):
            restored = decode(encode(value))
            assert restored == value
            assert loads(dumps(value)) == value

        check()


# --------------------------------------------------------------------- #
# Envelope: versioning, integrity, atomic files


class TestEnvelope:
    PAYLOAD = {"now": 123, "ranks": [(0, 1), (1, 0)],
               "window": deque([1.5, 2.5], maxlen=4)}

    def test_dumps_loads_round_trip(self):
        assert loads(dumps(self.PAYLOAD)) == self.PAYLOAD

    def test_rejects_non_json(self):
        with pytest.raises(SnapshotCorruptError):
            loads("not json at all {")

    def test_rejects_bad_magic(self):
        envelope = json.loads(dumps(self.PAYLOAD))
        envelope["magic"] = "someone-elses-format"
        with pytest.raises(SnapshotCorruptError):
            loads(json.dumps(envelope))

    def test_rejects_unknown_version(self):
        envelope = json.loads(dumps(self.PAYLOAD))
        envelope["version"] = SCHEMA_VERSION + 1
        with pytest.raises(SnapshotVersionError):
            loads(json.dumps(envelope))

    def test_rejects_flipped_bit(self):
        envelope = json.loads(dumps(self.PAYLOAD))
        envelope["payload"] = envelope["payload"].replace("123", "124", 1)
        with pytest.raises(SnapshotCorruptError):
            loads(json.dumps(envelope))

    def test_rejects_truncation(self):
        text = dumps(self.PAYLOAD)
        with pytest.raises(SnapshotCorruptError):
            loads(text[:len(text) // 2])

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "deep" / "state.ckpt"
        write_snapshot(path, self.PAYLOAD)
        assert read_snapshot(path) == self.PAYLOAD
        assert not list(path.parent.glob("*.tmp"))  # no temp litter

    def test_missing_file_is_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError):
            read_snapshot(tmp_path / "never-written.ckpt")

    def test_corrupt_file_error_names_the_path(self, tmp_path):
        path = tmp_path / "state.ckpt"
        write_snapshot(path, self.PAYLOAD)
        path.write_text(path.read_text()[:40], encoding="utf-8")
        with pytest.raises(SnapshotCorruptError, match="state.ckpt"):
            read_snapshot(path)

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "state.ckpt"
        write_snapshot(path, {"generation": 1})
        write_snapshot(path, {"generation": 2})
        assert read_snapshot(path) == {"generation": 2}


# --------------------------------------------------------------------- #
# Snapshot/restore bit-exactness on fuzzed full-system configurations


def _sample_specs(count, seed=0x5AFE):
    """Seeded configuration sample, same axes as the engine-equivalence
    fuzz (platform presets, geometry, modes, throttles, workloads)."""
    rng = random.Random(seed)
    modes = [AccessMode.HOST_ONLY, AccessMode.SHARED,
             AccessMode.BANK_PARTITIONED, AccessMode.RANK_PARTITIONED,
             AccessMode.NDA_ONLY]
    opcodes = [NdaOpcode.DOT, NdaOpcode.AXPY, NdaOpcode.COPY,
               NdaOpcode.SCAL, NdaOpcode.NRM2, NdaOpcode.GEMV]
    specs = []
    while len(specs) < count:
        ranks = rng.choice([1, 2, 4])
        mode = rng.choice(modes)
        if mode is AccessMode.RANK_PARTITIONED and ranks < 2:
            continue
        specs.append({
            "channels": rng.choice([1, 2]),
            "ranks": ranks,
            "mode": mode,
            "platform": rng.choice([None, None, "ddr4-3200",
                                    "lpddr4-3200", "ddr5-4800", "hbm2"]),
            "throttle": rng.choice(["issue_if_idle", "next_rank",
                                    "stochastic"]),
            "probability": rng.choice([0.25, 1.0 / 16.0]),
            "mix": rng.choice(["mix1", "mix5", "mix8"]),
            "opcode": rng.choice(opcodes),
            "elements": rng.choice([1 << 10, 1 << 11]),
            "warmup": rng.choice([0, 100]),
        })
    return specs


_SPECS = _sample_specs(5)
_CYCLES = 700
_EVERY = 250  # three chunks: two mid-run checkpoints per leg


def _build_spec(spec, engine, backend):
    _reset_watermarks()
    mode = spec["mode"]
    system = ChopimSystem(
        config=resolve_config(spec.get("platform"), spec["channels"],
                              spec["ranks"]),
        mode=mode,
        mix=spec["mix"] if mode.has_host_traffic else None,
        throttle=spec["throttle"],
        stochastic_probability=spec["probability"],
        engine=engine, backend=backend)
    if mode.has_nda_traffic:
        kwargs = {}
        if spec["opcode"] is NdaOpcode.GEMV:
            kwargs["matrix_columns"] = 64
        system.set_nda_workload(spec["opcode"],
                                elements_per_rank=spec["elements"], **kwargs)
    return system


class TestSnapshotRestoreEquivalence:
    """checkpointed run == uninterrupted run == restored-and-finished run."""

    @pytest.mark.parametrize("engine,backend", _LEGS,
                             ids=[f"{e}-{b}" for e, b in _LEGS])
    @pytest.mark.parametrize("index", range(len(_SPECS)))
    def test_fuzzed_config(self, index, engine, backend):
        spec = _SPECS[index]

        baseline = dataclasses.asdict(
            _build_spec(spec, engine, backend).run(
                cycles=_CYCLES, warmup=spec["warmup"]))

        texts = []
        chunked = dataclasses.asdict(
            _build_spec(spec, engine, backend).run(
                cycles=_CYCLES, warmup=spec["warmup"],
                checkpoint_hook=lambda s: texts.append(
                    dumps(snapshot_system(s))),
                checkpoint_every=_EVERY))
        assert chunked == baseline, "checkpointing perturbed the run"
        assert len(texts) >= 1, "no mid-run checkpoint was taken"

        # Every mid-run snapshot — serialized through the codec, like a
        # real file — must restore into a system that finishes to the
        # baseline result.
        for text in texts:
            restored = restore_system(loads(text))
            result = dataclasses.asdict(restored.finish_run())
            mismatched = [k for k in baseline if baseline[k] != result[k]]
            assert not mismatched, (
                f"restored run diverged on {mismatched[:3]}")

    def test_composite_kernel_sequence(self):
        from repro.core.system import NdaKernelSpec

        def build(engine="event"):
            _reset_watermarks()
            system = ChopimSystem(mode=AccessMode.BANK_PARTITIONED,
                                  mix="mix5", engine=engine)
            system.set_nda_workload_sequence([
                NdaKernelSpec(NdaOpcode.GEMV, 512, matrix_columns=64),
                NdaKernelSpec(NdaOpcode.AXPY, 512),
                NdaKernelSpec(NdaOpcode.DOT, 512),
            ])
            return system

        baseline = dataclasses.asdict(build().run(cycles=1200, warmup=100))
        texts = []
        build().run(cycles=1200, warmup=100,
                    checkpoint_hook=lambda s: texts.append(
                        dumps(snapshot_system(s))),
                    checkpoint_every=400)
        assert texts
        restored = restore_system(loads(texts[0]))
        assert dataclasses.asdict(restored.finish_run()) == baseline

    def test_async_fine_grain_launches(self):
        """Launch packets in flight across the checkpoint boundary."""
        def build():
            _reset_watermarks()
            system = ChopimSystem(mode=AccessMode.BANK_PARTITIONED,
                                  mix="mix1", engine="event")
            system.set_nda_workload(NdaOpcode.NRM2,
                                    elements_per_rank=1 << 11,
                                    cache_blocks=16, async_launch=True)
            return system

        baseline = dataclasses.asdict(build().run(cycles=900, warmup=0))
        texts = []
        build().run(cycles=900, warmup=0,
                    checkpoint_hook=lambda s: texts.append(
                        dumps(snapshot_system(s))),
                    checkpoint_every=300)
        for text in texts:
            restored = restore_system(loads(text))
            assert dataclasses.asdict(restored.finish_run()) == baseline


# --------------------------------------------------------------------- #
# Restore guard rails


class TestRestoreGuards:
    def _snapshot(self):
        _reset_watermarks()
        system = ChopimSystem(config=default_config(),
                              mode=AccessMode.NDA_ONLY, engine="event")
        system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 10)
        system.run(cycles=300, warmup=0,
                   checkpoint_hook=lambda s: None, checkpoint_every=0)
        # Take the snapshot at the (safe) end-of-run boundary.
        return snapshot_system(system)

    def test_rejects_wrong_kind(self):
        payload = self._snapshot()
        payload["kind"] = "some-other-simulator"
        with pytest.raises(SnapshotError):
            restore_system(payload)

    def test_rejects_burst_mode_mismatch(self):
        payload = self._snapshot()
        payload["build"]["burst_enabled"] = \
            not payload["build"]["burst_enabled"]
        with pytest.raises(SnapshotError):
            restore_system(payload)

    def test_finish_run_requires_in_progress_run(self):
        system = ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8")
        with pytest.raises(RuntimeError):
            system.finish_run()

    def test_snapshot_is_detached_from_the_live_system(self):
        """Continuing the checkpointed system must not mutate the payload."""
        _reset_watermarks()
        system = ChopimSystem(config=default_config(),
                              mode=AccessMode.SHARED, mix="mix5",
                              engine="event")
        system.set_nda_workload(NdaOpcode.AXPY, elements_per_rank=1 << 10)
        captured = []
        system.run(cycles=600, warmup=0,
                   checkpoint_hook=lambda s: captured.append(
                       (dumps(snapshot_system(s)), snapshot_system(s))),
                   checkpoint_every=200)
        for text, payload in captured:
            assert dumps(payload) == text, (
                "payload aliases live state: it changed after the run "
                "continued")


# --------------------------------------------------------------------- #
# Sweep-side checkpoint plumbing


class TestCheckpointSlot:
    def test_load_missing_is_none(self, tmp_path):
        from repro.experiments.sweeprunner.checkpoint import CheckpointSlot
        assert CheckpointSlot(tmp_path, "k", 1).load() is None

    def test_corrupt_checkpoint_means_fresh_start(self, tmp_path):
        from repro.experiments.sweeprunner.checkpoint import CheckpointSlot
        slot = CheckpointSlot(tmp_path, "k", 1)
        slot.path().write_text("garbage", encoding="utf-8")
        assert slot.load() is None  # never an exception, never a fail

    def test_save_and_load_round_trip(self, tmp_path):
        from repro.experiments.sweeprunner.checkpoint import CheckpointSlot
        slot = CheckpointSlot(tmp_path, "k", 1)
        slot.save({"cursor": 41})
        assert slot.saves == 1
        # A retry's slot (different attempt) resumes the same file.
        assert CheckpointSlot(tmp_path, "k", 2).load() == {"cursor": 41}

    def test_run_with_checkpoint_resumes_bit_exactly(self, tmp_path,
                                                     monkeypatch):
        from repro.experiments.sweeprunner import checkpoint as cp

        def build():
            _reset_watermarks()
            system = ChopimSystem(config=default_config(),
                                  mode=AccessMode.BANK_PARTITIONED,
                                  mix="mix1", engine="event")
            system.set_nda_workload(NdaOpcode.COPY,
                                    elements_per_rank=1 << 10)
            return system

        baseline = dataclasses.asdict(build().run(cycles=800, warmup=50))

        monkeypatch.setenv(cp.CHECKPOINT_EVERY_ENV, "200")
        slot = cp.CheckpointSlot(tmp_path, "point", 1)
        cp.activate(slot)
        try:
            first = dataclasses.asdict(
                cp.run_with_checkpoint(build, 800, warmup=50))
            assert first == baseline
            assert slot.saves >= 1
            # Leave the last checkpoint in place, as a killed worker would,
            # and run the "retry": it must resume (not restart) and match.
            retry = cp.CheckpointSlot(tmp_path, "point", 2)
            cp.activate(retry)
            resumed = dataclasses.asdict(
                cp.run_with_checkpoint(build, 800, warmup=50))
            assert resumed == baseline
        finally:
            cp.deactivate()

    def test_no_slot_is_a_plain_run(self, monkeypatch):
        from repro.experiments.sweeprunner import checkpoint as cp
        monkeypatch.setenv(cp.CHECKPOINT_EVERY_ENV, "200")
        cp.deactivate()

        def build():
            _reset_watermarks()
            return ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8")

        result = cp.run_with_checkpoint(build, 300, warmup=0)
        assert result.cycles == 300


# --------------------------------------------------------------------- #
# Ledger compaction


class TestLedgerCompaction:
    def test_compaction_preserves_replay_state(self, tmp_path):
        from repro.experiments.sweeprunner import ledger as lm

        path = tmp_path / "sweep-x.jsonl"
        ledger = lm.RunLedger(path)
        ledger.append_queued(["a", "b"], {"points": 2})
        ledger.append_leased("a", 1)
        ledger.append_failed("a", 1, "crash")
        ledger.append_leased("a", 2, checkpoint="resume")
        ledger.append_done("a", 2)
        ledger.append_leased("b", 1)
        ledger.append_done("b", 1)

        before_leases = lm.lease_counts(path)
        before_resumes = lm.resume_counts(path)
        assert ledger.compact()
        ledger.close()

        # One snapshot line, no backup litter, counts intact.
        assert lm.count_events(path, "snapshot") == 1
        assert lm.count_events(path, "leased") == 0
        assert not path.with_name(path.name + ".bak").exists()
        assert lm.lease_counts(path) == before_leases
        assert lm.resume_counts(path) == before_resumes

        reopened = lm.RunLedger(path)
        assert reopened.record("a").done
        assert reopened.record("a").leases == 2
        assert reopened.record("a").resumed == 1
        assert len(reopened.record("a").failures) == 1
        assert reopened.record("b").done
        # The compacted ledger is still an appendable journal.
        reopened.append_leased("c", 1)
        reopened.close()
        assert lm.lease_counts(path)["c"] == 1

    def test_resumed_lease_counted_on_replay(self, tmp_path):
        from repro.experiments.sweeprunner import ledger as lm

        path = tmp_path / "sweep-y.jsonl"
        ledger = lm.RunLedger(path)
        ledger.append_leased("k", 1, checkpoint="fresh")
        ledger.append_leased("k", 2, checkpoint="resume")
        ledger.close()
        assert lm.RunLedger(path).record("k").resumed == 1
        assert lm.resume_counts(path) == {"k": 1}
