"""End-to-end integration tests reproducing the paper's qualitative takeaways
on reduced configurations.

Each test corresponds to one of the numbered takeaways in Section VII; the
full-size regenerations (and the quantitative comparison against the paper)
are produced by the benchmark suite and recorded in EXPERIMENTS.md.
"""

import pytest

from repro.config import scaled_config
from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem
from repro.nda.isa import NdaOpcode

CYCLES = 3000
WARMUP = 300
ELEMENTS = 1 << 13


def run_system(mode, opcode=None, mix="mix1", throttle="next_rank",
               channels=2, ranks=2, **kwargs):
    system = ChopimSystem(config=scaled_config(channels, ranks), mode=mode,
                          mix=mix, throttle=throttle, **kwargs)
    if opcode is not None:
        system.set_nda_workload(opcode, elements_per_rank=ELEMENTS)
    return system, system.run(cycles=CYCLES, warmup=WARMUP)


class TestTakeaway2BankPartitioning:
    """Bank partitioning substantially improves NDA performance (Fig. 11)."""

    def test_partitioned_dot_beats_shared_dot(self):
        _, shared = run_system(AccessMode.SHARED, NdaOpcode.DOT,
                               throttle="issue_if_idle")
        _, partitioned = run_system(AccessMode.BANK_PARTITIONED, NdaOpcode.DOT,
                                    throttle="issue_if_idle")
        assert partitioned.nda_bw_utilization > shared.nda_bw_utilization * 1.2

    def test_read_intensive_nda_barely_affects_host(self):
        _, host_only = run_system(AccessMode.HOST_ONLY)
        _, with_dot = run_system(AccessMode.BANK_PARTITIONED, NdaOpcode.DOT)
        assert with_dot.host_ipc > host_only.host_ipc * 0.8


class TestTakeaway3WriteThrottling:
    """Throttling NDA writes protects host performance (Fig. 12)."""

    def test_next_rank_prediction_protects_host_vs_no_throttling(self):
        _, aggressive = run_system(AccessMode.BANK_PARTITIONED, NdaOpcode.COPY,
                                   throttle="issue_if_idle")
        _, predicted = run_system(AccessMode.BANK_PARTITIONED, NdaOpcode.COPY,
                                  throttle="next_rank")
        assert predicted.host_ipc > aggressive.host_ipc

    def test_stochastic_probability_trades_host_for_nda(self):
        sys_low, low = run_system(AccessMode.BANK_PARTITIONED, NdaOpcode.COPY,
                                  throttle="stochastic")
        sys_low._stochastic_probability  # construction sanity
        system_hi = ChopimSystem(config=scaled_config(2, 2),
                                 mode=AccessMode.BANK_PARTITIONED, mix="mix1",
                                 throttle="stochastic", stochastic_probability=1.0 / 16)
        system_hi.set_nda_workload(NdaOpcode.COPY, elements_per_rank=ELEMENTS)
        heavy_throttle = system_hi.run(cycles=CYCLES, warmup=WARMUP)
        assert heavy_throttle.nda_bw_utilization <= low.nda_bw_utilization + 0.02
        assert heavy_throttle.host_ipc >= low.host_ipc * 0.95


class TestTakeaway4WriteIntensity:
    """NDA performance is inversely related to write intensity (Fig. 13)."""

    def test_dot_achieves_more_bandwidth_than_copy(self):
        _, dot = run_system(AccessMode.BANK_PARTITIONED, NdaOpcode.DOT)
        _, copy = run_system(AccessMode.BANK_PARTITIONED, NdaOpcode.COPY)
        assert dot.nda_bw_utilization > copy.nda_bw_utilization

    def test_write_intensive_nda_hurts_host_more(self):
        _, dot = run_system(AccessMode.BANK_PARTITIONED, NdaOpcode.DOT,
                            throttle="issue_if_idle")
        _, copy = run_system(AccessMode.BANK_PARTITIONED, NdaOpcode.COPY,
                             throttle="issue_if_idle")
        assert copy.host_ipc < dot.host_ipc


class TestTakeaway5Scalability:
    """Chopim beats and out-scales rank partitioning (Fig. 14)."""

    def test_chopim_nda_bandwidth_exceeds_rank_partitioning(self):
        _, chopim = run_system(AccessMode.BANK_PARTITIONED, NdaOpcode.DOT)
        _, rank_part = run_system(AccessMode.RANK_PARTITIONED, NdaOpcode.DOT)
        assert chopim.nda_bandwidth_gbs > rank_part.nda_bandwidth_gbs

    def test_chopim_scales_superlinearly_vs_rank_partitioning(self):
        _, chopim_small = run_system(AccessMode.BANK_PARTITIONED, NdaOpcode.DOT)
        _, chopim_large = run_system(AccessMode.BANK_PARTITIONED, NdaOpcode.DOT,
                                     ranks=4)
        _, rank_small = run_system(AccessMode.RANK_PARTITIONED, NdaOpcode.DOT)
        _, rank_large = run_system(AccessMode.RANK_PARTITIONED, NdaOpcode.DOT,
                                   ranks=4)
        chopim_scaling = chopim_large.nda_bandwidth_gbs / chopim_small.nda_bandwidth_gbs
        rank_scaling = rank_large.nda_bandwidth_gbs / rank_small.nda_bandwidth_gbs
        assert chopim_scaling > 1.3
        assert chopim_scaling >= rank_scaling * 0.9


class TestTakeaway7Power:
    """Concurrent access does not blow the memory power budget (Section VII)."""

    def test_concurrent_power_below_host_only_theoretical_max(self):
        system, result = run_system(AccessMode.BANK_PARTITIONED, NdaOpcode.COPY)
        maximum = system.energy_model.theoretical_max_host_power_w()
        assert 0 < result.energy["total_power_w"] <= maximum * 1.05


class TestMechanismInvariants:
    def test_fsms_never_diverge_across_modes(self):
        for mode in (AccessMode.SHARED, AccessMode.BANK_PARTITIONED,
                     AccessMode.RANK_PARTITIONED):
            system, _ = run_system(mode, NdaOpcode.AXPY)
            assert system.verify_fsm_sync()

    def test_nda_utilization_never_exceeds_idealized_bound(self):
        for opcode in (NdaOpcode.DOT, NdaOpcode.COPY, NdaOpcode.AXPY):
            _, result = run_system(AccessMode.BANK_PARTITIONED, opcode)
            assert result.nda_bw_utilization <= result.idealized_bw_utilization + 0.05

    def test_nda_only_utilizes_nearly_all_bandwidth(self):
        system = ChopimSystem(mode=AccessMode.NDA_ONLY)
        system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 14)
        result = system.run(cycles=CYCLES)
        # The paper reports up to 97% of unutilized bandwidth; allow margin.
        assert result.nda_bw_utilization > 0.8

    def test_host_only_baseline_unaffected_by_mode_object(self):
        _, shared = run_system(AccessMode.SHARED)
        _, host_only = run_system(AccessMode.HOST_ONLY)
        assert shared.host_ipc == pytest.approx(host_only.host_ipc, rel=0.05)
