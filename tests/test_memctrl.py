"""Tests for the host memory controller: queues, FR-FCFS, write drain, refresh."""

import pytest

from repro.config import DramOrgConfig, DramTimingConfig, SchedulerConfig
from repro.dram.commands import CommandType, DramAddress
from repro.dram.device import DramSystem
from repro.memctrl.controller import ChannelController
from repro.memctrl.frfcfs import FrFcfsScheduler
from repro.memctrl.request import MemoryRequest, RequestQueue

T = DramTimingConfig()


def addr(channel=0, rank=0, bg=0, bank=0, row=0, col=0):
    return DramAddress(channel, rank, bg, bank, row, col)


@pytest.fixture
def dram():
    return DramSystem(DramOrgConfig(), T)


@pytest.fixture
def controller(dram):
    return ChannelController(0, dram, SchedulerConfig(refresh_enabled=False))


def drive(controller, cycles, start=0):
    completed = []
    for now in range(start, start + cycles):
        completed.extend(controller.tick(now))
    return completed, start + cycles


class TestRequestQueue:
    def test_fifo_order_and_capacity(self):
        q = RequestQueue(2)
        r1 = MemoryRequest(addr(), False)
        r2 = MemoryRequest(addr(col=1), False)
        r3 = MemoryRequest(addr(col=2), False)
        assert q.push(r1) and q.push(r2)
        assert not q.push(r3)
        assert q.full
        assert q.oldest() is r1
        q.remove(r1)
        assert q.oldest() is r2

    def test_occupancy(self):
        q = RequestQueue(4)
        q.push(MemoryRequest(addr(), False))
        assert q.occupancy == 0.25

    def test_find_write_to(self):
        q = RequestQueue(4)
        w = MemoryRequest(addr(row=3), True)
        q.push(w)
        assert q.find_write_to(addr(row=3)) is w
        assert q.find_write_to(addr(row=4)) is None


    def test_fifo_order_preserved_across_interleaved_removals(self):
        """Regression for the bucketed O(1) removal: iteration must stay
        exactly arrival order through arbitrary remove/push interleavings."""
        q = RequestQueue(8)
        reqs = [MemoryRequest(addr(row=i, bank=i % 4), False) for i in range(6)]
        for r in reqs:
            assert q.push(r)
        q.remove(reqs[2])
        q.remove(reqs[0])
        assert [r.request_id for r in q] == [reqs[i].request_id for i in (1, 3, 4, 5)]
        late = MemoryRequest(addr(row=9), False)
        q.push(late)
        assert [r.request_id for r in q] == (
            [reqs[i].request_id for i in (1, 3, 4, 5)] + [late.request_id])
        assert q.oldest() is reqs[1]

    def test_remove_absent_request_raises(self):
        q = RequestQueue(4)
        r = MemoryRequest(addr(), False)
        q.push(r)
        q.remove(r)
        with pytest.raises(ValueError):
            q.remove(r)

    def test_bank_buckets_and_rank_counts_track_membership(self):
        q = RequestQueue(8)
        a0 = addr(rank=0, bank=1, row=1)
        a1 = addr(rank=1, bank=1, row=2)
        r0 = MemoryRequest(a0, False)
        r1 = MemoryRequest(a1, False)
        r2 = MemoryRequest(a0.with_row(7), False)
        for r in (r0, r1, r2):
            q.push(r)
        assert q.has_bank(0, 0, 1) and q.has_bank(1, 0, 1)
        assert not q.has_bank(0, 0, 2)
        assert q.count_for_rank(0) == 2 and q.count_for_rank(1) == 1
        assert [r.request_id for r in q.find_same_bank(a0)] == [
            r0.request_id, r2.request_id]
        q.remove(r0)
        q.remove(r2)
        assert not q.has_bank(0, 0, 1)
        assert q.count_for_rank(0) == 0
        assert q.find_same_bank(a0) == []

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RequestQueue(0)

    def test_request_completion_callback(self):
        seen = []
        r = MemoryRequest(addr(), False, on_complete=seen.append)
        r.arrival_cycle = 5
        r.complete(30)
        assert seen == [30]
        assert r.latency() == 25


class TestFrFcfs:
    def test_prefers_row_hit_over_older_miss(self, dram):
        scheduler = FrFcfsScheduler(dram)
        hit_addr = addr(bank=0, row=1)
        miss_addr = addr(bank=1, row=2)
        # Open the row for the hit request.
        from repro.dram.commands import Command, RequestSource
        dram.issue(Command(CommandType.ACT, hit_addr, RequestSource.HOST), 0)
        older_miss = MemoryRequest(miss_addr, False)
        newer_hit = MemoryRequest(hit_addr, False)
        now = T.tRCD
        chosen = scheduler.select([older_miss, newer_hit], now)
        assert chosen is not None
        request, cmd = chosen
        assert request is newer_hit
        assert cmd.kind is CommandType.RD

    def test_falls_back_to_oldest_issueable(self, dram):
        scheduler = FrFcfsScheduler(dram)
        r1 = MemoryRequest(addr(bank=0, row=1), False)
        r2 = MemoryRequest(addr(bank=1, row=2), False)
        chosen = scheduler.select([r1, r2], 0)
        assert chosen is not None
        assert chosen[0] is r1
        assert chosen[1].kind is CommandType.ACT

    def test_returns_none_when_nothing_ready(self, dram):
        scheduler = FrFcfsScheduler(dram)
        a = addr(bank=0, row=1)
        from repro.dram.commands import Command, RequestSource
        dram.issue(Command(CommandType.ACT, a, RequestSource.HOST), 0)
        # A conflicting request needs PRE, which is not legal before tRAS.
        conflicting = MemoryRequest(a.with_row(9), False)
        assert scheduler.select([conflicting], 1) is None


class TestChannelController:
    def test_read_completes_after_full_latency(self, controller):
        request = MemoryRequest(addr(row=1), False)
        assert controller.enqueue(request, 0)
        completed, _ = drive(controller, 200)
        assert request.completed_cycle is not None
        assert request.completed_cycle >= T.tRCD + T.tCL + T.tBL
        assert request in completed

    def test_wrong_channel_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.enqueue(MemoryRequest(addr(channel=1), False), 0)

    def test_queue_full_rejection(self, controller):
        for i in range(controller.config.read_queue_entries):
            assert controller.enqueue(MemoryRequest(addr(row=i, bank=i % 4), False), 0)
        assert not controller.enqueue(MemoryRequest(addr(row=99), False), 0)
        assert controller.counters["queue_full_rejects"] == 1

    def test_read_forwarding_from_write_queue(self, controller):
        target = addr(row=7, col=3)
        controller.enqueue(MemoryRequest(target, True), 0)
        read = MemoryRequest(target, False)
        controller.enqueue(read, 1)
        # Forwarded reads complete immediately without a DRAM access.
        assert read.completed_cycle == 1
        assert controller.counters["read_forwards"] == 1

    def test_row_hits_after_first_access(self, controller, dram):
        for col in range(4):
            controller.enqueue(MemoryRequest(addr(row=5, col=col), False), 0)
        drive(controller, 300)
        counts = dram.conflict_counts()
        assert counts["row_hits"] == 3
        assert counts["row_misses"] == 1

    def test_write_drain_triggers_at_watermark(self, controller):
        entries = controller.config.write_queue_entries
        for i in range(int(entries * 0.8)):
            controller.enqueue(MemoryRequest(addr(row=i % 8, bank=i % 4, col=i), True), 0)
        drive(controller, 400)
        assert controller.counters["drain_entries"] >= 1
        assert controller.counters["cmd_wr"] > 0

    def test_reads_prioritized_over_writes_below_watermark(self, controller):
        controller.enqueue(MemoryRequest(addr(row=1, bank=0), True), 0)
        read = MemoryRequest(addr(row=2, bank=1), False)
        controller.enqueue(read, 0)
        drive(controller, 100)
        # The read must not wait behind the single queued write.
        assert read.completed_cycle is not None
        assert controller.counters["cmd_rd"] == 1

    def test_oldest_pending_read_rank(self, controller):
        assert controller.oldest_pending_read_rank() is None
        controller.enqueue(MemoryRequest(addr(rank=1, row=1), False), 0)
        controller.enqueue(MemoryRequest(addr(rank=0, row=1), False), 1)
        assert controller.oldest_pending_read_rank() == 1

    def test_last_issue_tracking(self, controller):
        controller.enqueue(MemoryRequest(addr(rank=1, row=1), False), 0)
        drive(controller, 5)
        assert controller.last_issue_cycle >= 0
        assert controller.last_issue_rank == 1

    def test_refresh_issued_when_enabled(self, dram):
        controller = ChannelController(0, dram, SchedulerConfig(refresh_enabled=True))
        for now in range(T.tREFI + 50):
            controller.tick(now)
        assert controller.counters["refreshes"] >= 1

    def test_stats_reporting(self, controller):
        request = MemoryRequest(addr(row=1), False)
        controller.enqueue(request, 0)
        drive(controller, 200)
        stats = controller.stats()
        assert stats["read_enqueued"] == 1
        assert stats["avg_read_latency"] > 0
        assert controller.outstanding == 0
        assert not controller.busy()
