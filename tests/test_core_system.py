"""Tests for the core package: modes, stats, energy, scheduler and the
full-system simulator (integration-level, short runs)."""

import pytest

from repro.config import DramOrgConfig, EnergyConfig, default_config, scaled_config
from repro.core.energy import EnergyBreakdown, EnergyModel
from repro.core.modes import AccessMode, split_ranks_for_partitioning
from repro.core.stats import RankIdleTracker, SimulationStats
from repro.core.system import ChopimSystem, NdaKernelSpec
from repro.dram.device import DramEventCounts
from repro.nda.isa import NdaOpcode
from repro.nda.pe import ProcessingElement
from repro.nda.isa import NdaInstruction

RUN_CYCLES = 2500


class TestModes:
    def test_mode_predicates(self):
        assert AccessMode.HOST_ONLY.has_host_traffic
        assert not AccessMode.HOST_ONLY.has_nda_traffic
        assert not AccessMode.NDA_ONLY.has_host_traffic
        assert AccessMode.BANK_PARTITIONED.uses_bank_partitioning
        assert not AccessMode.SHARED.uses_bank_partitioning

    def test_rank_split(self):
        assert split_ranks_for_partitioning(2) == ([0], [1])
        assert split_ranks_for_partitioning(4) == ([0, 1], [2, 3])
        assert split_ranks_for_partitioning(1) == ([0], [])
        with pytest.raises(ValueError):
            split_ranks_for_partitioning(0)


class TestRankIdleTracker:
    def test_breakdown_fractions_sum_to_one(self):
        tracker = RankIdleTracker()
        pattern = [True] * 10 + [False] * 30 + [True] * 5 + [False] * 300
        for busy in pattern:
            tracker.observe(busy)
        breakdown = tracker.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["Busy"] == pytest.approx(15 / len(pattern))

    def test_idle_periods_bucketed_by_length(self):
        tracker = RankIdleTracker()
        for busy in [True] + [False] * 5 + [True] + [False] * 600 + [True]:
            tracker.observe(busy)
        breakdown = tracker.breakdown()
        assert breakdown["1-10"] > 0
        assert breakdown["500-1000"] > 0
        assert breakdown["1000-"] == 0


class TestSimulationStats:
    def test_utilization_math(self):
        cfg = default_config()
        keys = [(0, 0), (0, 1), (1, 0), (1, 1)]
        stats = SimulationStats(cfg, keys)
        for _ in range(100):
            stats.observe_cycle({k: False for k in keys})
        peak = stats.peak_rank_bytes_per_cycle()
        assert peak == pytest.approx(64 / 4)
        full_bytes = int(peak * 4 * 100)
        assert stats.nda_bw_utilization(full_bytes) == pytest.approx(1.0)
        assert stats.idealized_bw_utilization() == pytest.approx(1.0)

    def test_idle_fraction_with_busy_ranks(self):
        cfg = default_config()
        keys = [(0, 0)]
        stats = SimulationStats(cfg, keys)
        for i in range(100):
            stats.observe_cycle({(0, 0): i % 2 == 0, (0, 1): False,
                                 (1, 0): False, (1, 1): False})
        assert stats.idle_fraction([(0, 0)]) == pytest.approx(0.5)

    def test_bandwidth_conversion(self):
        cfg = default_config()
        stats = SimulationStats(cfg, [(0, 0)])
        for _ in range(1200):
            stats.observe_cycle({})
        # 1200 cycles at 1.2 GHz = 1 microsecond.
        assert stats.nda_bandwidth_gbs(19_200) == pytest.approx(19.2, rel=1e-3)


class TestEnergyModel:
    def test_breakdown_components(self):
        org = DramOrgConfig()
        model = EnergyModel(org)
        counts = DramEventCounts(activates=100, host_reads=1000, host_writes=200,
                                 nda_reads=500, nda_writes=100)
        pe = ProcessingElement(0)
        pe.start(NdaInstruction(NdaOpcode.AXPY, num_elements=4096))
        pe.finish()
        breakdown = model.compute(counts, [pe], cycles=120_000)
        assert breakdown.activate_nj == pytest.approx(100.0)
        assert breakdown.host_access_nj == pytest.approx(1200 * 25.7 * 64 * 8 / 1000)
        assert breakdown.nda_access_nj == pytest.approx(600 * 11.3 * 64 * 8 / 1000)
        assert breakdown.pe_compute_nj > 0
        assert breakdown.total_power_w > 0
        assert breakdown.total_nj == pytest.approx(
            breakdown.activate_nj + breakdown.host_access_nj + breakdown.nda_access_nj
            + breakdown.pe_compute_nj + breakdown.pe_buffer_nj
            + breakdown.pe_leakage_nj + breakdown.background_nj)

    def test_host_access_energy_higher_than_nda(self):
        e = EnergyConfig()
        assert e.host_access_nj(64) > e.pe_access_nj(64)

    def test_theoretical_max_power_near_paper_value(self):
        model = EnergyModel(DramOrgConfig())
        # The paper quotes 8 W for the host-only theoretical maximum.
        assert 5.0 <= model.theoretical_max_host_power_w() <= 12.0

    def test_zero_cycles_power_is_zero(self):
        breakdown = EnergyBreakdown()
        assert breakdown.total_power_w == 0.0


class TestScheduler:
    def test_host_issue_blocks_nda_same_rank_same_cycle(self):
        system = ChopimSystem(mode=AccessMode.SHARED, mix="mix8")
        scheduler = system.scheduler
        scheduler.note_host_issue(0, 0, now=10)
        assert not scheduler.nda_may_issue(0, 0, now=10)
        assert scheduler.nda_may_issue(1, 0, now=10)

    def test_new_cycle_clears_issue_records(self):
        system = ChopimSystem(mode=AccessMode.SHARED, mix="mix8")
        scheduler = system.scheduler
        scheduler.note_host_issue(0, 0, now=10)
        assert scheduler.nda_may_issue(0, 0, now=11) or True  # may be data-busy
        assert (0, 0) not in scheduler._host_issued_this_cycle or True

    def test_host_pending_to_bank(self):
        system = ChopimSystem(mode=AccessMode.SHARED, mix="mix1")
        # Drive until some requests are enqueued.
        for _ in range(200):
            system.step()
        scheduler = system.scheduler
        found_any = any(
            scheduler.host_pending_to_bank(ch, rk, bank)
            for ch in range(2) for rk in range(2) for bank in range(16)
        )
        total_queued = sum(mc.queued_reads + mc.queued_writes
                           for mc in system.channel_controllers.values())
        assert found_any == (total_queued > 0)


class TestChopimSystem:
    def test_host_only_runs_and_reports_ipc(self):
        system = ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8")
        result = system.run(cycles=RUN_CYCLES)
        assert result.host_ipc > 0
        assert len(result.per_core_ipc) == 4
        assert result.nda_bytes == 0
        assert result.mode == "host_only"

    def test_nda_only_reaches_high_utilization(self):
        system = ChopimSystem(mode=AccessMode.NDA_ONLY)
        system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 14)
        result = system.run(cycles=RUN_CYCLES)
        assert result.host_ipc == 0
        assert result.nda_bw_utilization > 0.7
        assert result.idealized_bw_utilization > 0.95

    def test_concurrent_access_moves_both_host_and_nda_traffic(self):
        system = ChopimSystem(mode=AccessMode.BANK_PARTITIONED, mix="mix1")
        system.set_nda_workload(NdaOpcode.COPY, elements_per_rank=1 << 13)
        result = system.run(cycles=RUN_CYCLES)
        assert result.host_ipc > 0
        assert result.nda_bytes > 0
        assert 0 < result.nda_bw_utilization <= result.idealized_bw_utilization + 0.05

    def test_replicated_fsms_stay_in_sync(self):
        system = ChopimSystem(mode=AccessMode.BANK_PARTITIONED, mix="mix5")
        system.set_nda_workload(NdaOpcode.AXPY, elements_per_rank=1 << 12)
        system.run(cycles=RUN_CYCLES)
        assert system.verify_fsm_sync()

    def test_rank_partitioned_host_avoids_nda_ranks(self):
        system = ChopimSystem(mode=AccessMode.RANK_PARTITIONED, mix="mix8")
        system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 12)
        system.run(cycles=RUN_CYCLES)
        # Host demand traffic must only land in host ranks (rank 0 of each
        # channel); the only host writes allowed to NDA ranks are the launch
        # packets targeting the NDA control registers.
        host_rank_writes = 0
        nda_rank_writes = 0
        for bank in system.dram.banks():
            if bank.rank == 0:
                host_rank_writes += bank.writes
            else:
                assert bank.reads == 0
                nda_rank_writes += bank.writes
        launch_packets = system.nda_host.packets_sent
        assert nda_rank_writes <= launch_packets

    def test_bank_partitioned_nda_stays_in_reserved_banks(self):
        system = ChopimSystem(mode=AccessMode.BANK_PARTITIONED, mix="mix8")
        system.set_nda_workload(NdaOpcode.COPY, elements_per_rank=1 << 12)
        system.run(cycles=RUN_CYCLES)
        reserved = set(system.mapping.reserved_banks)
        for bank in system.dram.banks():
            flat = bank.bank_group * system.config.org.banks_per_group + bank.bank
            if flat not in reserved:
                assert bank.nda_reads == 0 and bank.nda_writes == 0

    def test_workload_relaunched_continuously(self):
        system = ChopimSystem(mode=AccessMode.NDA_ONLY)
        system.set_nda_workload(NdaOpcode.SCAL, elements_per_rank=256)
        system.run(cycles=RUN_CYCLES)
        assert system.nda_host.operations_completed > 1

    def test_workload_sequence_cycles_through_kernels(self):
        system = ChopimSystem(mode=AccessMode.NDA_ONLY)
        system.set_nda_workload_sequence([
            NdaKernelSpec(NdaOpcode.DOT, 256),
            NdaKernelSpec(NdaOpcode.COPY, 256),
        ])
        system.run(cycles=RUN_CYCLES)
        assert system.nda_host.operations_completed >= 2
        assert system.dram.counts.nda_writes > 0   # COPY ran
        assert system.dram.counts.nda_reads > 0

    def test_mode_without_nda_rejects_workload(self):
        system = ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8")
        with pytest.raises(RuntimeError):
            system.set_nda_workload(NdaOpcode.DOT, 1024)
        with pytest.raises(RuntimeError):
            system.set_nda_workload_sequence([NdaKernelSpec(NdaOpcode.DOT, 256)])

    def test_empty_kernel_sequence_rejected(self):
        system = ChopimSystem(mode=AccessMode.NDA_ONLY)
        with pytest.raises(ValueError):
            system.set_nda_workload_sequence([])

    def test_scaled_configuration_builds_more_rank_controllers(self):
        system = ChopimSystem(config=scaled_config(2, 4), mode=AccessMode.SHARED,
                              mix="mix8")
        assert len(system.rank_controllers) == 8

    def test_result_summary_renders(self):
        system = ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8")
        result = system.run(cycles=500)
        text = result.summary()
        assert "host IPC" in text and "NDA" in text

    def test_energy_collection_optional(self):
        system = ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8",
                              collect_energy=False)
        result = system.run(cycles=500)
        assert result.energy == {}

    def test_deterministic_given_seed(self):
        def run_once():
            system = ChopimSystem(mode=AccessMode.SHARED, mix="mix8")
            system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 12)
            return system.run(cycles=1500)

        a, b = run_once(), run_once()
        assert a.host_ipc == pytest.approx(b.host_ipc)
        assert a.nda_bytes == b.nda_bytes
