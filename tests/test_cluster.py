"""Tests for multi-host sweep sharding (repro.experiments.sweeprunner.cluster).

Most tests drive ShardCoordinator / FederatedStore directly against a tmp
directory; the end-to-end ones race real in-process drivers (threads with
distinct host identities) over one shared sweep directory, which is exactly
the deployment model — the coordination medium is the filesystem, not the
process.
"""

import json
import os
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.sweeprunner import (
    ClusterOptions,
    FaultPlan,
    RunLedger,
    SweepOptions,
    collect_garbage,
    lease_counts,
    merged_counts,
    migrate_counts,
    run_sweep_outcome,
)
from repro.experiments.sweeprunner import ledger as ledger_module
from repro.experiments.sweeprunner.checkpoint import (
    checkpoint_file,
    peek_fraction,
)
from repro.experiments.sweeprunner.cluster import (
    BUSY,
    EXHAUSTED,
    FederatedStore,
    HOST_ENV,
    Lease,
    ShardCoordinator,
    resolve_host,
)
from repro.experiments.sweeprunner.faults import (
    ALL_FAULT_KINDS,
    FAULT_KINDS,
    FAULT_KINDS_ENV,
    FAULT_RATE_ENV,
)
from repro.experiments.sweeprunner.progress import ProgressReporter
from repro.experiments.sweeprunner.store import SweepCache
from repro.experiments.sweeprunner.tasks import make_task
from repro.snapshot import write_snapshot


def _coord(root, host, max_leases=3, staleness=30.0, stagger=0.0,
           fault_plan=None):
    """A coordinator with a fresh synchronous heartbeat (no beat thread)."""
    coord = ShardCoordinator(
        Path(root), host, max_leases,
        ClusterOptions(host=host, heartbeat_interval=0.05,
                       staleness=staleness, steal_stagger=stagger,
                       poll_interval=0.01),
        fault_plan=fault_plan)
    coord._beat()
    return coord


def _age_file(path: Path, seconds: float) -> None:
    old = time.time() - seconds
    os.utime(path, (old, old))


class TestClaims:
    def test_o_excl_claim_single_winner(self, tmp_path):
        a = _coord(tmp_path, "a")
        b = _coord(tmp_path, "b")
        lease = a.acquire("k1")
        assert isinstance(lease, Lease)
        assert (lease.epoch, lease.provenance) == (1, "fresh")
        assert b.acquire("k1") is BUSY  # holder alive: wait, don't race
        assert a.still_holds("k1", 1)

    def test_concurrent_o_excl_race_one_winner(self, tmp_path):
        """N threads rush one epoch file; O_CREAT|O_EXCL admits exactly one."""
        coords = [_coord(tmp_path, f"h{i}") for i in range(8)]
        barrier = threading.Barrier(len(coords))
        wins = []

        def rush(coord):
            barrier.wait()
            if coord._try_claim("contested", 1):
                wins.append(coord.host)

        threads = [threading.Thread(target=rush, args=(c,)) for c in coords]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(wins) == 1

    def test_failed_marker_releases_lease(self, tmp_path):
        a = _coord(tmp_path, "a")
        b = _coord(tmp_path, "b")
        a.acquire("k1")
        a.mark_failed("k1", 1, "error", "ValueError", "boom")
        # b may mint epoch 2 immediately — no staleness wait for failures.
        lease = b.acquire("k1")
        assert isinstance(lease, Lease) and lease.epoch == 2
        assert not a.still_holds("k1", 1)
        assert b.steals == 0  # a release is re-claimed, not stolen

    def test_exhausted_after_budget_spent(self, tmp_path):
        a = _coord(tmp_path, "a", max_leases=1)
        b = _coord(tmp_path, "b", max_leases=1)
        a.acquire("k1")
        a.mark_failed("k1", 1, "error", "ValueError", "boom")
        assert b.acquire("k1") is EXHAUSTED
        info = b.failure_info("k1", 1)
        assert info["error_type"] == "ValueError"
        assert info["kind"] == "error"

    def test_live_holder_at_budget_is_busy_not_exhausted(self, tmp_path):
        a = _coord(tmp_path, "a", max_leases=1)
        b = _coord(tmp_path, "b", max_leases=1)
        a.acquire("k1")
        # The final lease is held by a live host: its outcome is pending.
        assert b.acquire("k1") is BUSY

    def test_torn_claim_treated_dead_after_staleness(self, tmp_path):
        a = _coord(tmp_path, "a", staleness=0.5)
        b = _coord(tmp_path, "b", staleness=0.5)
        # A claim file with no identity: the winner died mid-create.
        path = a._claim_path("k1", 1)
        path.touch()
        a._epoch_cache.pop("k1", None)
        assert b.acquire("k1") is BUSY  # fresh: winner may still be writing
        _age_file(path, 5.0)
        lease = b.acquire("k1")
        assert isinstance(lease, Lease) and lease.epoch == 2


class TestLiveness:
    def test_heartbeat_staleness(self, tmp_path):
        a = _coord(tmp_path, "a", staleness=0.5)
        b = _coord(tmp_path, "b", staleness=0.5)
        assert b.host_alive("a")
        _age_file(tmp_path / "hosts" / "a.hb", 5.0)
        assert not b.host_alive("a")
        assert b.host_alive("b")
        assert not b.host_alive("never-started")

    def test_netsplit_suppression_is_refcounted(self, tmp_path):
        a = _coord(tmp_path, "a", staleness=30.0)
        _age_file(tmp_path / "hosts" / "a.hb", 60.0)
        a.suppress_heartbeats()
        a.suppress_heartbeats()
        a._beat()
        assert not a.host_alive("a")  # still split: no beat landed
        a.resume_heartbeats()
        a._beat()
        assert not a.host_alive("a")  # one suppression still active
        a.resume_heartbeats()         # final resume beats immediately
        assert a.host_alive("a")

    def test_heartbeat_thread_beats(self, tmp_path):
        from repro.experiments.sweeprunner.selftest import wait_until

        a = _coord(tmp_path, "a", staleness=10.0)
        hb = tmp_path / "hosts" / "a.hb"
        _age_file(hb, 60.0)
        before = hb.stat().st_mtime
        a.start()
        try:
            assert wait_until(lambda: hb.stat().st_mtime > before,
                              timeout=5.0)
        finally:
            a.stop()


class TestStealing:
    def test_steal_from_dead_host(self, tmp_path):
        a = _coord(tmp_path, "a", staleness=0.5)
        b = _coord(tmp_path, "b", staleness=0.5)
        a.acquire("k1")
        _age_file(tmp_path / "hosts" / "a.hb", 5.0)
        lease = b.acquire("k1")
        assert isinstance(lease, Lease)
        assert (lease.epoch, lease.provenance) == (2, "fresh")
        assert b.steals == 1
        assert not a.still_holds("k1", 1)  # the dead host is fenced out

    def test_steal_migrates_checkpoint(self, tmp_path):
        a = _coord(tmp_path, "a", staleness=0.5)
        b = _coord(tmp_path, "b", staleness=0.5)
        a.acquire("k1")
        ckpt = checkpoint_file(a.checkpoint_dir(), "k1")
        ckpt.parent.mkdir(parents=True, exist_ok=True)
        ckpt.write_bytes(b"snapshot-bytes")
        _age_file(tmp_path / "hosts" / "a.hb", 5.0)
        lease = b.acquire("k1")
        assert lease.provenance == "migrated"
        assert b.migrations == 1
        migrated = checkpoint_file(b.checkpoint_dir(), "k1")
        assert migrated.read_bytes() == b"snapshot-bytes"

    def test_own_prior_incarnation_resumes_without_staleness(self, tmp_path):
        old = _coord(tmp_path, "a")
        old.acquire("k1")
        ckpt = checkpoint_file(old.checkpoint_dir(), "k1")
        ckpt.parent.mkdir(parents=True, exist_ok=True)
        ckpt.write_bytes(b"own-snapshot")
        # A restarted driver with the same host identity: its heartbeat is
        # fresh (it is its own), yet it must not deadlock on itself.
        restarted = _coord(tmp_path, "a")
        lease = restarted.acquire("k1")
        assert (lease.epoch, lease.provenance) == (2, "resume")
        assert restarted.steals == 0  # not a cross-host steal

    def test_steal_race_fault_removes_stagger(self, tmp_path):
        plan = FaultPlan(rate=1.0, seed=1, kinds=("steal-race",))
        raced = _coord(tmp_path, "a", stagger=10.0, fault_plan=plan)
        plain = _coord(tmp_path, "b", stagger=10.0)
        assert raced._steal_delay("k1", 1) == 0.0
        assert 0.0 <= plain._steal_delay("k1", 1) < 10.0

    def test_staggered_steal_waits_first(self, tmp_path):
        a = _coord(tmp_path, "a", staleness=0.5)
        b = _coord(tmp_path, "b", staleness=0.5, stagger=30.0)
        a.acquire("k1")
        _age_file(tmp_path / "hosts" / "a.hb", 5.0)
        first = b.acquire("k1")
        # Either BUSY (stagger pending) or an immediate win when this
        # (host, key) hashes near zero — never an error, never a double.
        assert first is BUSY or isinstance(first, Lease)


class TestFederatedStore:
    def test_merge_across_shards(self, tmp_path):
        def point(x):
            return {"x": x}

        task = make_task(point, {"x": 1})
        writer = FederatedStore(tmp_path, "a")
        writer.store(task, {"x": 1, "y": 2})
        reader = FederatedStore(tmp_path, "b")
        assert reader.load(task) == {"x": 1, "y": 2}
        assert reader.hits == 1
        assert (tmp_path / "shards" / "a").is_dir()

    def test_flat_single_host_layout_still_read(self, tmp_path):
        def point(x):
            return {"x": x}

        task = make_task(point, {"x": 1})
        SweepCache(tmp_path).store(task, {"x": 1, "y": 9})
        reader = FederatedStore(tmp_path, "b")
        assert reader.load(task) == {"x": 1, "y": 9}

    def test_corrupt_shard_quarantined_valid_peer_wins(self, tmp_path):
        def point(x):
            return {"x": x}

        task = make_task(point, {"x": 1})
        good = FederatedStore(tmp_path, "a")
        good.store(task, {"x": 1, "y": 2})
        bad_path = tmp_path / "shards" / "b" / f"{task.cache_key()}.json"
        bad_path.parent.mkdir(parents=True, exist_ok=True)
        bad_path.write_text("{ torn", encoding="utf-8")
        # Make the corrupt entry the newest so naive LWW would pick it.
        future = time.time() + 60
        os.utime(bad_path, (future, future))
        reader = FederatedStore(tmp_path, "c")
        assert reader.load(task) == {"x": 1, "y": 2}
        assert reader.quarantined == 1
        assert bad_path.with_suffix(".corrupt").exists()


class TestMergedAudits:
    def test_merged_lease_and_migrate_counts(self, tmp_path):
        path_a = ledger_module.ledger_path(tmp_path, "deadbeef", host="a")
        path_b = ledger_module.ledger_path(tmp_path, "deadbeef", host="b")
        assert path_a != path_b
        la = RunLedger(path_a)
        la.append_leased("k1", 1)
        la.close()
        lb = RunLedger(path_b)
        lb.append_leased("k1", 2, checkpoint="migrated")
        lb.append_leased("k2", 1, checkpoint="resume")
        lb.close()
        assert merged_counts(tmp_path, lease_counts) == {"k1": 2, "k2": 1}
        assert merged_counts(tmp_path, migrate_counts) == {"k1": 1}

    def test_migrate_counts_survive_compaction(self, tmp_path):
        path = ledger_module.ledger_path(tmp_path, "deadbeef", host="a")
        journal = RunLedger(path)
        journal.append_leased("k1", 1, checkpoint="migrated")
        journal.append_done("k1", 1)
        assert journal.compact()
        journal.close()
        assert migrate_counts(path) == {"k1": 1}


class TestClusterFaultKinds:
    def test_env_accepts_cluster_kinds(self, monkeypatch):
        monkeypatch.setenv(FAULT_RATE_ENV, "0.5")
        monkeypatch.setenv(FAULT_KINDS_ENV, "netsplit,steal-race")
        plan = FaultPlan.from_env()
        assert plan.kinds == ("netsplit", "steal-race")

    def test_default_schedule_excludes_cluster_kinds(self, monkeypatch):
        monkeypatch.setenv(FAULT_RATE_ENV, "0.5")
        monkeypatch.delenv(FAULT_KINDS_ENV, raising=False)
        plan = FaultPlan.from_env()
        assert plan.kinds == FAULT_KINDS
        assert "netsplit" not in FAULT_KINDS
        assert set(FAULT_KINDS) < set(ALL_FAULT_KINDS)


class TestGarbageCollection:
    def test_expired_corrupt_files_removed(self, tmp_path):
        stale = tmp_path / "old.corrupt"
        fresh = tmp_path / "new.corrupt"
        stale.write_text("x")
        fresh.write_text("x")
        _age_file(stale, 100.0)
        removed = collect_garbage(tmp_path, corrupt_retention=50.0)
        assert removed["corrupt"] == 1
        assert not stale.exists() and fresh.exists()

    def test_orphan_checkpoints_with_landed_rows_removed(self, tmp_path):
        ckpts = tmp_path / "checkpoints" / "h1"
        ckpts.mkdir(parents=True)
        landed = ckpts / "k1.ckpt"
        live = ckpts / "k2.ckpt"
        landed.write_bytes(b"x")
        live.write_bytes(b"x")
        shard = tmp_path / "shards" / "h1"
        shard.mkdir(parents=True)
        (shard / "k1.json").write_text("{}")
        removed = collect_garbage(tmp_path)
        assert removed["checkpoints"] == 1
        assert not landed.exists()
        assert live.exists()  # no row landed: live recovery state


class TestProgressCredit:
    def test_peek_fraction_reads_snapshot_progress(self, tmp_path):
        path = tmp_path / "k1.ckpt"
        write_snapshot(path, {"now": 700, "run_end": 1000,
                              "run_cycles": 1000})
        assert peek_fraction(path) == pytest.approx(0.7)

    def test_peek_fraction_zero_on_garbage(self, tmp_path):
        path = tmp_path / "k1.ckpt"
        assert peek_fraction(path) == 0.0  # missing
        path.write_bytes(b"not a snapshot")
        assert peek_fraction(path) == 0.0  # unreadable
        write_snapshot(path, {"now": "soon"})
        assert peek_fraction(path) == 0.0  # wrong schema

    def test_reporter_uses_work_units(self, tmp_path):
        import io

        stream = io.StringIO()
        reporter = ProgressReporter(total=10, interval=0.001, stream=stream)
        reporter.started -= 1.0  # pretend 1s elapsed
        reporter.maybe_report(done=4, leased=1, failed=0, cache_hits=0,
                              force=True, computed_work=2.0,
                              in_flight_credit=0.5)
        line = stream.getvalue()
        assert "2.0 rows/s" in line  # work units, not raw done count
        assert "eta" in line


def _slow_tally(value, tally):
    time.sleep(0.2)
    with open(tally, "a") as handle:
        handle.write(f"{value}\n")
    return {"value": value}


class TestClusterService:
    def _options(self, store, host, **overrides):
        cluster = ClusterOptions(host=host, heartbeat_interval=0.05,
                                 staleness=30.0, steal_stagger=0.0,
                                 poll_interval=0.02)
        merged = dict(processes=1, cache_dir=store, max_retries=2,
                      retry_backoff=0.01, cluster=cluster)
        merged.update(overrides)
        return SweepOptions(**merged)

    def test_cluster_requires_cache_dir(self):
        with pytest.raises(ValueError):
            run_sweep_outcome(
                _slow_tally, [{"value": 1, "tally": "x"}],
                options=SweepOptions(cache_dir="",
                                     cluster=ClusterOptions(host="a")))

    def test_two_drivers_racing_one_key(self, tmp_path):
        """Exactly one execution; the loser waits and adopts the row."""
        store = tmp_path / "store"
        tally = tmp_path / "tally.txt"
        params = [{"value": 7, "tally": str(tally)}]
        outcomes = {}

        def drive(host):
            outcomes[host] = run_sweep_outcome(
                _slow_tally, params, options=self._options(store, host))

        threads = [threading.Thread(target=drive, args=(h,))
                   for h in ("ra", "rb")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tally.read_text().splitlines() == ["7"]
        executed = sorted(o.stats.executed for o in outcomes.values())
        assert executed == [0, 1]
        assert all(o.rows == [{"value": 7}] for o in outcomes.values())
        loser = next(o for o in outcomes.values() if o.stats.executed == 0)
        assert loser.stats.peer_rows + loser.stats.cache_hits >= 1

    def test_per_host_ledgers_single_writer(self, tmp_path):
        store = tmp_path / "store"
        tally = tmp_path / "tally.txt"
        params = [{"value": v, "tally": str(tally)} for v in range(2)]
        for host in ("a", "b"):
            run_sweep_outcome(_slow_tally, params,
                              options=self._options(store, host))
        files = ledger_module.sweep_ledger_paths(store / "ledger")
        assert {p.name.split(".")[-2] for p in files} == {"a", "b"}
        merged = merged_counts(store / "ledger", lease_counts)
        assert all(count == 1 for count in merged.values())

    def test_failed_lease_info_crosses_hosts(self, tmp_path):
        def broken(value):
            raise ValueError(f"point {value} is broken")

        store = tmp_path / "store"
        first = run_sweep_outcome(
            broken, [{"value": 3}],
            options=self._options(store, "a", max_retries=0))
        assert len(first.failures) == 1
        second = run_sweep_outcome(
            broken, [{"value": 3}],
            options=self._options(store, "b", max_retries=0))
        assert len(second.failures) == 1
        failure = second.failures[0]
        assert second.stats.executed == 0  # budget spent by host a
        assert failure.kind == "error"
        assert "broken" in failure.message

    def test_netsplit_harmless_single_host(self, tmp_path):
        plan = FaultPlan(rate=1.0, seed=3, kinds=("netsplit",))
        outcome = run_sweep_outcome(
            _slow_tally,
            [{"value": v, "tally": str(tmp_path / "t.txt")}
             for v in range(2)],
            options=self._options(tmp_path / "store", "solo",
                                  fault_plan=plan))
        assert outcome.ok and len(outcome.rows) == 2

    def test_fenced_completion_discarded(self, tmp_path):
        """A stolen lease fences the original holder's late completion."""
        store = tmp_path / "store"

        def stolen_mid_run(value, root):
            # Simulate the steal while the point is executing: a peer
            # (which never heartbeats, so it immediately reads as dead)
            # mints the next epoch for our key.  Only once — when the
            # victim steals the lease back, the rerun completes cleanly.
            root_path = Path(root)
            marker = root_path / "stolen.marker"
            if not marker.exists():
                marker.write_text("x")
                thief = ShardCoordinator(root_path, "thief", 3,
                                         ClusterOptions(host="thief"))
                key = make_task(stolen_mid_run,
                                {"value": value, "root": root}).cache_key()
                assert thief._try_claim(key, 2)
            return {"value": value}

        outcome = run_sweep_outcome(
            stolen_mid_run, [{"value": 1, "root": str(store)}],
            options=self._options(store, "victim", max_retries=2))
        assert outcome.ok
        assert outcome.stats.fenced_writes >= 1
        key = make_task(stolen_mid_run,
                        {"value": 1, "root": str(store)}).cache_key()
        leases = merged_counts(store / "ledger", lease_counts)
        assert leases[key] <= 3  # bound: 1 + max_retries


class TestHostIdentity:
    def test_resolve_host_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(HOST_ENV, "from-env")
        assert resolve_host("explicit") == "explicit"
        assert resolve_host() == "from-env"
        monkeypatch.delenv(HOST_ENV)
        assert resolve_host()  # falls back to the machine hostname


class TestShardProofSmoke:
    def test_small_shard_proof(self, tmp_path):
        """The full multi-host proof, scaled down for the test suite."""
        from repro.experiments.sweeprunner import selftest

        report = selftest.run_shard_proof(
            points=2, cycles=4000, elements=1 << 10, every=200, hosts=2,
            staleness=0.6, fault_rate=0.0, verbose=False)
        assert report["ok"], report
