"""Burst-issue fast-path oracle: bursts must be invisible in final state.

``REPRO_DISABLE_BURST=1`` is the escape hatch that turns the event engine's
burst-issue fast path off (every command then goes through the per-cycle
path).  The oracle here replays each burst-heavy scenario with bursting
disabled and diffs the *complete* observable state — the SimulationResult
(stats + energy), every DRAM event and bank counter, the timing engine's
rank/bank horizons, the replicated FSM registers and the per-rank NDA
counters — against the bursting run.  Unit tests for the closed-form pieces
(bulk FSM transitions, bulk write-buffer drains) ride along.
"""

import dataclasses

import pytest

from repro.config import scaled_config
from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem
from repro.dram.commands import DramAddress
from repro.dram.timing import _ChannelTiming, _RankTiming
from repro.kernel import kernel_available
from repro.nda.fsm import ReplicatedFsm
from repro.nda.isa import NdaOpcode
from repro.nda.write_buffer import NdaWriteBuffer
from repro.platform import platform_config
from repro.platform.packing import BANK_FIELDS

#: Backends the replay oracles cover; the kernel leg drops out with numpy.
_BACKENDS = ("python", "kernel") if kernel_available() else ("python",)


def _build_and_run(mode, opcode, *, mix=None, throttle="issue_if_idle",
                   channels=2, ranks=2, elements=1 << 13, cycles=1500,
                   warmup=150, config=None, engine="event",
                   backend="python"):
    cfg = config or scaled_config(channels, ranks)
    system = ChopimSystem(config=cfg, mode=mode,
                          mix=mix, throttle=throttle, engine=engine,
                          backend=backend)
    system.set_nda_workload(opcode, elements_per_rank=elements)
    result = system.run(cycles=cycles, warmup=warmup)
    return system, result


def _timing_state(system):
    # All three state tiers are read by *scalar field name*, not
    # ``__slots__``: on the kernel backend ``_banks``/``_ranks``/
    # ``_channels`` hold array views whose slots are private column
    # references but whose public fields mirror the scalar classes, so
    # states compare across backends.  Container fields (``faw_window``,
    # ``act_allowed_bg``) are materialized as plain lists for the same
    # reason.
    timing = system.dram.timing
    rank_containers = ("faw_window", "act_allowed_bg")
    ranks = [
        {slot: getattr(rank, slot) for slot in _RankTiming.__slots__
         if slot not in rank_containers}
        | {slot: list(getattr(rank, slot)) for slot in rank_containers}
        for rank in timing._ranks
    ]
    banks = [
        {field: getattr(bank, field) for field in BANK_FIELDS}
        for bank in timing._banks
    ]
    channels = [
        {slot: getattr(ch, slot) for slot in _ChannelTiming.__slots__}
        for ch in timing._channels
    ]
    return {"ranks": ranks, "banks": banks, "channels": channels}


def _full_state(system, result, include_attempt_counters=True):
    return {
        "result": dataclasses.asdict(result),
        "dram_counts": dataclasses.asdict(system.dram.counts),
        "bank_counters": [
            (b.state.value, b.open_row, b.row_hits, b.row_misses,
             b.row_conflicts, b.reads, b.writes, b.nda_reads, b.nda_writes)
            for b in system.dram.banks()
        ],
        "timing": _timing_state(system),
        "rank_controllers": {
            # Instruction ids come from a process-global counter, so the
            # FSM's current_instruction register is normalized to presence.
            # With include_attempt_counters=False the blocked_by_* counters
            # are excluded: they count provably futile issue attempts,
            # which the burst path does not replay — the same exclusion the
            # cycle==event guarantee makes (see "Equivalence guarantee" in
            # ARCHITECTURE.md).  The classic DDR4 scenarios keep matching
            # them exactly, so only suites whose wake patterns provably
            # diverge on attempts (non-default cadences, refresh pressure)
            # opt out.
            key: {k: v for k, v in rc.stats().items()
                  if include_attempt_counters
                  or not k.startswith("blocked_by")} | {
                "fsm": (rc.fsm.state.current_instruction is not None,)
                + rc.fsm.state.as_tuple()[1:],
                "fsm_events": rc.fsm.events_applied,
                "write_buffer": rc.write_buffer.state_tuple(),
            }
            for key, rc in system.rank_controllers.items()
        },
        "channel_stats": {
            # drain_entries counts write-drain hysteresis *evaluations* that
            # entered drain mode; in pick-insensitive oscillating states
            # (see _update_drain_mode) its value depends on tick cadence,
            # which legitimately differs across wake patterns (per-cycle
            # replay vs selective wakes vs the stepper's fused windows).
            # Mode trajectory at every decision point is pinned by the rest
            # of the state compared here (issue order, bank counters,
            # timing horizons), so the oscillation count is excluded — the
            # same reasoning as the blocked_by_* attempt counters above.
            ch: {k: v for k, v in mc.stats().items() if k != "drain_entries"}
            for ch, mc in system.channel_controllers.items()
        },
        "now": system.now,
    }


_SCENARIOS = [
    ("nda_only_dot", dict(mode=AccessMode.NDA_ONLY, opcode=NdaOpcode.DOT,
                          ranks=4, elements=1 << 14)),
    ("nda_only_copy", dict(mode=AccessMode.NDA_ONLY, opcode=NdaOpcode.COPY)),
    ("partitioned_mix1", dict(mode=AccessMode.BANK_PARTITIONED, mix="mix1",
                              throttle="next_rank", opcode=NdaOpcode.DOT,
                              ranks=4, elements=1 << 14)),
    ("shared_axpy", dict(mode=AccessMode.SHARED, mix="mix5",
                         throttle="next_rank", opcode=NdaOpcode.AXPY)),
]


class TestBurstOracle:
    """Burst-on vs burst-off (per-cycle replay) must match state-for-state."""

    @pytest.mark.parametrize("backend", _BACKENDS)
    @pytest.mark.parametrize("name,spec", _SCENARIOS)
    def test_replay_matches(self, name, spec, backend, monkeypatch):
        # The bursting run uses ``backend``; the per-cycle replay always
        # uses the pure-python scalar path, so the kernel leg is a combined
        # cross-backend *and* cross-path oracle (vectorized settlement and
        # batched scan against the scalar per-cycle ground truth).
        monkeypatch.delenv("REPRO_DISABLE_BURST", raising=False)
        burst_system, burst_result = _build_and_run(backend=backend, **spec)
        assert burst_system.burst_enabled
        monkeypatch.setenv("REPRO_DISABLE_BURST", "1")
        plain_system, plain_result = _build_and_run(**spec)
        assert not plain_system.burst_enabled

        burst_state = _full_state(burst_system, burst_result)
        plain_state = _full_state(plain_system, plain_result)
        mismatched = [key for key in plain_state
                      if plain_state[key] != burst_state[key]]
        assert not mismatched, (
            f"burst path diverged from per-cycle replay on {mismatched}"
        )

    def test_bursts_actually_planned(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISABLE_BURST", raising=False)
        system, _ = _build_and_run(mode=AccessMode.NDA_ONLY,
                                   opcode=NdaOpcode.DOT, ranks=4,
                                   elements=1 << 14)
        settled = sum(rc.burst_commands_settled
                      for rc in system.rank_controllers.values())
        commands = sum(rc.commands_issued
                       for rc in system.rank_controllers.values())
        # The steady-state streams should flow overwhelmingly through the
        # fast path (only row transitions and streak heads go per-cycle).
        assert settled > commands * 0.8

    def test_escape_hatch_disables_planning(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_BURST", "1")
        system, _ = _build_and_run(mode=AccessMode.NDA_ONLY,
                                   opcode=NdaOpcode.DOT)
        assert all(rc.bursts_planned == 0
                   for rc in system.rank_controllers.values())


def _refresh_heavy_config(platform=None, tREFI=700, tRFC=200):
    """A configuration whose refresh period is tiny (vs. the 9360-cycle
    default), so several REF commands land inside every burst-length
    window."""
    cfg = platform_config(platform) if platform else scaled_config(2, 2)
    cfg.timing = dataclasses.replace(cfg.timing, tREFI=tREFI, tRFC=tRFC)
    cfg.validate()
    return cfg


class TestBurstRefreshPressure:
    """Refresh x burst interaction: REF must truncate / order around plans.

    A refresh-heavy timing config (small tREFI) forces refresh precharges
    and REF commands into the middle of the NDA's steady-state streaks.
    Each scenario is checked two ways: the burst run against the
    ``REPRO_DISABLE_BURST=1`` per-cycle replay (full-state diff), and the
    event engine against the cycle engine (result diff) — if a REF fails
    to truncate a live ``_BurstPlan``, the settled stream runs through the
    refresh window and both diffs light up.
    """

    _SCENARIOS = [
        ("nda_only_stream", dict(mode=AccessMode.NDA_ONLY,
                                 opcode=NdaOpcode.DOT, ranks=2,
                                 elements=1 << 13)),
        ("drain_heavy_copy", dict(mode=AccessMode.NDA_ONLY,
                                  opcode=NdaOpcode.COPY, elements=1 << 12)),
        ("concurrent_mix1", dict(mode=AccessMode.BANK_PARTITIONED,
                                 mix="mix1", throttle="next_rank",
                                 opcode=NdaOpcode.COPY)),
    ]

    #: Platforms the refresh x burst interaction is replay-checked on: the
    #: refresh-cap arithmetic divides by the burst cadence, so it must be
    #: exercised at cadences other than DDR4's 4 (hbm2: 2, ddr5-4800: 8).
    _PLATFORMS = [None, "hbm2", "ddr5-4800"]

    @pytest.mark.parametrize("backend", _BACKENDS)
    @pytest.mark.parametrize("platform", _PLATFORMS)
    @pytest.mark.parametrize("name,spec", _SCENARIOS)
    def test_burst_replay_matches_under_refresh_pressure(self, name, spec,
                                                         platform, backend,
                                                         monkeypatch):
        monkeypatch.delenv("REPRO_DISABLE_BURST", raising=False)
        burst_system, burst_result = _build_and_run(
            config=_refresh_heavy_config(platform), backend=backend, **spec)
        refreshes = sum(mc.counters.get("refreshes")
                        for mc in burst_system.channel_controllers.values())
        assert refreshes > 0, "scenario exerts no refresh pressure"
        monkeypatch.setenv("REPRO_DISABLE_BURST", "1")
        plain_system, plain_result = _build_and_run(
            config=_refresh_heavy_config(platform), **spec)

        burst_state = _full_state(burst_system, burst_result,
                                  include_attempt_counters=False)
        plain_state = _full_state(plain_system, plain_result,
                                  include_attempt_counters=False)
        mismatched = [key for key in plain_state
                      if plain_state[key] != burst_state[key]]
        assert not mismatched, (
            f"burst path diverged under refresh pressure on {mismatched}")

    @pytest.mark.parametrize("name,spec", _SCENARIOS)
    def test_engines_agree_under_refresh_pressure(self, name, spec):
        results = {}
        for engine in ("cycle", "event"):
            _, result = _build_and_run(config=_refresh_heavy_config(),
                                       engine=engine, **spec)
            results[engine] = dataclasses.asdict(result)
        assert results["cycle"] == results["event"]

    def test_bursts_still_planned_between_refreshes(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISABLE_BURST", raising=False)
        system, _ = _build_and_run(mode=AccessMode.NDA_ONLY,
                                   opcode=NdaOpcode.DOT, ranks=2,
                                   elements=1 << 13,
                                   config=_refresh_heavy_config())
        planned = sum(rc.bursts_planned
                      for rc in system.rank_controllers.values())
        assert planned > 0, "refresh pressure must not disable bursting"


class TestBurstPlatforms:
    """The burst oracle on non-default platform presets: the plan cadence
    (max(tCCD_S, tBL)) and geometry are derived per platform."""

    _SCENARIOS = [
        ("hbm2_dot", "hbm2", dict(mode=AccessMode.NDA_ONLY,
                                  opcode=NdaOpcode.DOT, elements=1 << 13)),
        ("lpddr4_copy", "lpddr4-3200",
         dict(mode=AccessMode.BANK_PARTITIONED, mix="mix1",
              throttle="next_rank", opcode=NdaOpcode.COPY)),
        ("ddr5_scal", "ddr5-4800", dict(mode=AccessMode.NDA_ONLY,
                                        opcode=NdaOpcode.SCAL,
                                        elements=1 << 13)),
    ]

    @pytest.mark.parametrize("backend", _BACKENDS)
    @pytest.mark.parametrize("name,platform,spec", _SCENARIOS)
    def test_replay_matches(self, name, platform, spec, backend,
                            monkeypatch):
        monkeypatch.delenv("REPRO_DISABLE_BURST", raising=False)
        burst_system, burst_result = _build_and_run(
            config=platform_config(platform), backend=backend, **spec)
        assert burst_system.burst_enabled
        monkeypatch.setenv("REPRO_DISABLE_BURST", "1")
        plain_system, plain_result = _build_and_run(
            config=platform_config(platform), **spec)

        burst_state = _full_state(burst_system, burst_result,
                                  include_attempt_counters=False)
        plain_state = _full_state(plain_system, plain_result,
                                  include_attempt_counters=False)
        mismatched = [key for key in plain_state
                      if plain_state[key] != burst_state[key]]
        assert not mismatched, (
            f"burst path diverged on platform {platform}: {mismatched}")

    def test_burst_step_follows_platform_cadence(self):
        for platform, expected in (("hbm2", 2), ("ddr5-4800", 8),
                                   ("lpddr4-3200", 8)):
            system = ChopimSystem(config=platform_config(platform),
                                  mode=AccessMode.NDA_ONLY, mix=None,
                                  engine="event")
            steps = {rc._burst_step
                     for rc in system.rank_controllers.values()}
            assert steps == {expected}, (platform, steps)


class TestBulkPrimitives:
    """The closed-form settlement helpers equal their per-event loops."""

    def test_fsm_apply_bulk_matches_loop(self):
        bulk = ReplicatedFsm(0, 0)
        loop = ReplicatedFsm(0, 0)
        for fsm in (bulk, loop):
            fsm.apply("launch", instruction_id=7, reads=100, writes=40)
        for _ in range(12):
            loop.apply("write_buffered")
        bulk.apply_bulk("write_buffered", 12)
        for _ in range(30):
            loop.apply("read_issued")
        bulk.apply_bulk("read_issued", 30)
        loop.apply("drain_start")
        bulk.apply("drain_start")
        for _ in range(5):
            loop.apply("write_drained")
        bulk.apply_bulk("write_drained", 5)
        assert bulk.state == loop.state
        assert bulk.events_applied == loop.events_applied
        assert bulk.recent_events(64) == loop.recent_events(64)
        assert bulk.in_sync and loop.in_sync

    def test_fsm_apply_bulk_rejects_non_streaming_events(self):
        fsm = ReplicatedFsm(0, 0)
        with pytest.raises(ValueError):
            fsm.apply_bulk("launch", 3)

    def test_write_buffer_pop_bulk_matches_loop(self):
        def fill(buffer, count):
            for i in range(count):
                buffer.push(DramAddress(0, 0, 0, 0, 0, i))

        bulk = NdaWriteBuffer(16, drain_high_watermark=0.5,
                              drain_low_watermark=0.125)
        loop = NdaWriteBuffer(16, drain_high_watermark=0.5,
                              drain_low_watermark=0.125)
        fill(bulk, 10)
        fill(loop, 10)
        assert bulk.draining and loop.draining
        for _ in range(6):
            loop.pop()
        bulk.pop_bulk(6)
        assert bulk.state_tuple() == loop.state_tuple()
        assert bulk.total_drained == loop.total_drained
        assert list(bulk._entries) == list(loop._entries)

    def test_write_buffer_pop_bulk_bounds(self):
        buffer = NdaWriteBuffer(4)
        buffer.push(DramAddress(0, 0, 0, 0, 0, 0))
        with pytest.raises(IndexError):
            buffer.pop_bulk(2)
