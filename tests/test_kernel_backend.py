"""Kernel backend selection and the no-numpy fallback contract.

The kernel backend is optional: ``repro`` must import and run every python
engine with numpy absent, and ``backend="kernel"`` must fail with one clean,
actionable error — not an ImportError from deep inside a hot path.  numpy
absence is simulated with ``REPRO_FORCE_NO_NUMPY=1`` (the same switch the CI
no-numpy job uses), so these tests run identically in both CI legs.
"""

import dataclasses

import pytest

from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem
from repro.kernel import (kernel_available, kernel_unavailable_reason,
                          require_kernel)
from repro.nda.isa import NdaOpcode

requires_kernel = pytest.mark.skipif(
    not kernel_available(), reason="numpy unavailable: kernel backend off")


class TestAvailabilityGate:
    def test_force_no_numpy_disables_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_NO_NUMPY", "1")
        assert not kernel_available()
        assert "REPRO_FORCE_NO_NUMPY" in kernel_unavailable_reason()

    def test_require_kernel_error_is_actionable(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_NO_NUMPY", "1")
        with pytest.raises(RuntimeError) as excinfo:
            require_kernel()
        message = str(excinfo.value)
        assert "numpy" in message
        assert "backend='python'" in message
        assert "pip install" in message

    def test_kernel_backend_rejected_without_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_NO_NUMPY", "1")
        with pytest.raises(RuntimeError, match="numpy"):
            ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8",
                         backend="kernel")

    def test_python_backend_unaffected_without_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_NO_NUMPY", "1")
        for engine in ("cycle", "event"):
            system = ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix8",
                                  engine=engine, backend="python")
            result = system.run(cycles=300, warmup=0)
            assert result.cycles == 300

    def test_available_with_numpy_present(self):
        # The test image ships numpy; outside the forced-off env the gate
        # must report available (the no-numpy CI job exports the force
        # switch process-wide, flipping this expectation via skipif).
        if kernel_available():
            require_kernel()  # must not raise
        else:
            assert kernel_unavailable_reason() != ""


@requires_kernel
class TestBackendSelection:
    def test_kernel_backend_swaps_components(self):
        from repro.kernel.scan import KernelFrFcfsScheduler
        from repro.kernel.timing_kernel import KernelTimingEngine

        system = ChopimSystem(mode=AccessMode.BANK_PARTITIONED, mix="mix1",
                              backend="kernel")
        assert system.backend == "kernel"
        assert isinstance(system.dram.timing, KernelTimingEngine)
        for controller in system.channel_controllers.values():
            assert isinstance(controller.scheduler, KernelFrFcfsScheduler)

    def test_python_backend_keeps_scalar_components(self):
        from repro.dram.timing import TimingEngine
        from repro.kernel.timing_kernel import KernelTimingEngine

        system = ChopimSystem(mode=AccessMode.BANK_PARTITIONED, mix="mix1",
                              backend="python")
        assert system.backend == "python"
        assert type(system.dram.timing) is TimingEngine
        assert not isinstance(system.dram.timing, KernelTimingEngine)

    def test_kernel_smoke_run_matches_python(self):
        results = {}
        for backend in ("python", "kernel"):
            system = ChopimSystem(mode=AccessMode.BANK_PARTITIONED,
                                  mix="mix1", backend=backend)
            system.set_nda_workload(NdaOpcode.DOT, elements_per_rank=1 << 11)
            results[backend] = dataclasses.asdict(
                system.run(cycles=600, warmup=60))
        assert results["python"] == results["kernel"]
