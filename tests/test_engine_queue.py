"""Unit tests for the engine's wake-ordering structures."""

import random

import pytest

from repro.engine.queue import INFINITY, EventQueue, IndexedCalendar


class _Item:
    def __init__(self, name):
        self.name = name


class TestEventQueue:
    def test_earliest_of_scheduled_items(self):
        queue = EventQueue()
        a, b = _Item("a"), _Item("b")
        queue.schedule(10, a)
        queue.schedule(5, b)
        assert queue.earliest_cycle() == 5
        assert len(queue) == 2

    def test_empty_queue_is_infinity(self):
        queue = EventQueue()
        assert queue.earliest_cycle() == INFINITY
        assert queue.pop_due(100) is None

    def test_reschedule_moves_item(self):
        queue = EventQueue()
        item = _Item("a")
        queue.schedule(10, item)
        queue.schedule(3, item)
        assert queue.earliest_cycle() == 3
        queue.schedule(20, item)
        assert queue.earliest_cycle() == 20  # stale entries are discarded
        assert len(queue) == 1

    def test_infinity_cancels(self):
        queue = EventQueue()
        item = _Item("a")
        queue.schedule(7, item)
        queue.schedule(INFINITY, item)
        assert queue.earliest_cycle() == INFINITY
        assert len(queue) == 0

    def test_pop_due_respects_cycle(self):
        queue = EventQueue()
        a, b = _Item("a"), _Item("b")
        queue.schedule(5, a)
        queue.schedule(9, b)
        assert queue.pop_due(4) is None
        assert queue.pop_due(5) is a
        assert queue.pop_due(5) is None  # b not due yet
        assert queue.pop_due(9) is b
        assert len(queue) == 0

    def test_fifo_order_for_ties(self):
        queue = EventQueue()
        a, b = _Item("a"), _Item("b")
        queue.schedule(4, a)
        queue.schedule(4, b)
        assert queue.pop_due(4) is a
        assert queue.pop_due(4) is b

    def test_clear(self):
        queue = EventQueue()
        queue.schedule(2, _Item("a"))
        queue.clear()
        assert queue.earliest_cycle() == INFINITY


class TestIndexedCalendar:
    """Both representations (flat and heap) must agree with a naive oracle."""

    def test_initially_unscheduled(self):
        cal = IndexedCalendar(4)
        assert cal.min_cycle() == INFINITY
        assert len(cal) == 4

    def test_set_and_min(self):
        cal = IndexedCalendar(3)
        cal.set(0, 50)
        cal.set(1, 20)
        cal.set(2, 90)
        assert cal.min_cycle() == 20
        assert cal.min_slot() == 1
        cal.set(1, 200)  # increase past the others
        assert cal.min_cycle() == 50
        assert cal.min_slot() == 0
        cal.set(2, 5)    # decrease below everything
        assert cal.min_cycle() == 5
        assert cal.min_slot() == 2

    def test_unschedule_via_infinity(self):
        cal = IndexedCalendar(2)
        cal.set(0, 7)
        cal.set(0, INFINITY)
        assert cal.min_cycle() == INFINITY

    @pytest.mark.parametrize("slots", [8, 100])  # flat mode and heap mode
    def test_randomized_against_oracle(self, slots):
        rng = random.Random(42 + slots)
        cal = IndexedCalendar(slots)
        oracle = [INFINITY] * slots
        for _ in range(2000):
            slot = rng.randrange(slots)
            cycle = rng.choice([rng.randrange(1 << 20), INFINITY])
            cal.set(slot, cycle)
            oracle[slot] = cycle
            assert cal.min_cycle() == min(oracle)
            assert cal.values[slot] == oracle[slot]
        # min_slot must name a slot holding the minimum value.
        if min(oracle) != INFINITY:
            assert oracle[cal.min_slot()] == min(oracle)
