"""Unit tests for the engine's event queue."""

from repro.engine.queue import INFINITY, EventQueue


class _Item:
    def __init__(self, name):
        self.name = name


class TestEventQueue:
    def test_earliest_of_scheduled_items(self):
        queue = EventQueue()
        a, b = _Item("a"), _Item("b")
        queue.schedule(10, a)
        queue.schedule(5, b)
        assert queue.earliest_cycle() == 5
        assert len(queue) == 2

    def test_empty_queue_is_infinity(self):
        queue = EventQueue()
        assert queue.earliest_cycle() == INFINITY
        assert queue.pop_due(100) is None

    def test_reschedule_moves_item(self):
        queue = EventQueue()
        item = _Item("a")
        queue.schedule(10, item)
        queue.schedule(3, item)
        assert queue.earliest_cycle() == 3
        queue.schedule(20, item)
        assert queue.earliest_cycle() == 20  # stale entries are discarded
        assert len(queue) == 1

    def test_infinity_cancels(self):
        queue = EventQueue()
        item = _Item("a")
        queue.schedule(7, item)
        queue.schedule(INFINITY, item)
        assert queue.earliest_cycle() == INFINITY
        assert len(queue) == 0

    def test_pop_due_respects_cycle(self):
        queue = EventQueue()
        a, b = _Item("a"), _Item("b")
        queue.schedule(5, a)
        queue.schedule(9, b)
        assert queue.pop_due(4) is None
        assert queue.pop_due(5) is a
        assert queue.pop_due(5) is None  # b not due yet
        assert queue.pop_due(9) is b
        assert len(queue) == 0

    def test_fifo_order_for_ties(self):
        queue = EventQueue()
        a, b = _Item("a"), _Item("b")
        queue.schedule(4, a)
        queue.schedule(4, b)
        assert queue.pop_due(4) is a
        assert queue.pop_due(4) is b

    def test_clear(self):
        queue = EventQueue()
        queue.schedule(2, _Item("a"))
        queue.clear()
        assert queue.earliest_cycle() == INFINITY
