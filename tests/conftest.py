"""Shared fixtures for the test suite.

The ``small_org`` fixture shrinks the DRAM geometry (fewer rows) so that
exhaustive address-mapping property tests stay fast while preserving every
structural property (bank counts, row size, hashing) of the full system.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import (
    DramOrgConfig,
    DramTimingConfig,
    SystemConfig,
    default_config,
)


@pytest.fixture
def timing() -> DramTimingConfig:
    return DramTimingConfig()


@pytest.fixture
def org() -> DramOrgConfig:
    return DramOrgConfig()


@pytest.fixture
def small_org() -> DramOrgConfig:
    """A reduced-capacity organization (256 rows/bank) for exhaustive tests."""
    return DramOrgConfig(rows_per_bank=256)


@pytest.fixture
def config() -> SystemConfig:
    return default_config()


@pytest.fixture
def small_system_config() -> SystemConfig:
    """A full system config with the reduced DRAM capacity."""
    cfg = default_config()
    return dataclasses.replace(cfg, org=DramOrgConfig(rows_per_bank=256))
