"""Engine benchmark: cycles/sec per engine/backend, plus the fig14 sweep.

Measures

* **largest point** — simulated DRAM cycles per wall-clock second on
  fig14's largest configuration point (2 channels x 4 ranks, Chopim
  scheme, DOT workload, mix1) for every execution variant: the
  cycle-by-cycle engine, the event-driven engine, and (when numpy is
  importable) the event engine over the vectorized ``kernel`` backend —
  without the resident stepper (``kernel``, the PR-6 baseline), with the
  compiled multi-cycle stepper (``kernel_stepper``, present only when a C
  toolchain built the core) and with the stepper forced onto its
  pure-Python twin (``kernel_pystepper``, the no-toolchain fallback);
* **fig14 sweep** — wall-clock for regenerating the full Figure 14 sweep
  three ways: the legacy path (cycle engine, one point at a time, no cache),
  the new path (event engine through the parallel sweep runner, cold cache),
  and a cached regeneration (warm cache replay);
* **platforms** — the largest point re-run on every registered memory
  platform preset (every variant), so the regression gate can key on
  ``(platform, variant)`` pairs;
* **sweep service** — points/sec through the serial, supervised and
  journaled sweep paths (the supervision and durability overheads), plus a
  miniature crash/fault/resume drill whose recovery stats (retries,
  respawns, lease bound) are recorded for the CI log.

Results are written to ``BENCH_engine.json`` at the repository root.

The event-engine entry always includes ``selective_wake`` statistics: one
row per schedulable unit with its wake-probe count (``next_event_cycle``
calls), processed-cycle run count, received dirty notifications and skip
ratio — the data needed to see which unit forces processed cycles.

With ``--profile`` a cProfile pass over the largest point is added and the
top-20 cumulative-time entries (annotated with the repro layer each function
belongs to) are recorded per variant into the JSON, so perf PRs can see
where the next bottleneck lives without re-profiling by hand.  The kernel
variants' profiles additionally attribute wall-clock to each vector
primitive (``pack``/``scan``/``settle``/``scatter`` plus the compiled-core
``cscan`` and stepper ``step_setup``/``step_run``/``step_exit`` phases)
through the :mod:`repro.kernel.profile` counters — per-primitive call
counts, seconds and per-call microseconds — and a dispatch-overhead
microbench times one FR-FCFS scan as a single compiled C call, as the
numpy batched pass, and as the pure-Python twin, quantifying why fused C
dispatch beats per-scan numpy vectorization at real queue depths.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py [--cycles N] [--repeats N]
        [--profile] [--output PATH]
"""

from __future__ import annotations

import argparse
import cProfile
import json
import os
import pstats
import sys
import tempfile
import time
from pathlib import Path

from repro.core.modes import AccessMode
from repro.core.system import ChopimSystem
from repro.experiments.common import (
    DEFAULT_CYCLES,
    DEFAULT_ELEMENTS_PER_RANK,
    DEFAULT_WARMUP,
    resolve_config,
)
from repro.experiments.fig14_scaling import _point, sweep_params
from repro.experiments.sweep import SweepOptions, run_sweep, run_sweep_outcome
from repro.kernel import kernel_available
from repro.nda.isa import NdaOpcode
from repro.platform import DEFAULT_PLATFORM, platform_names

#: fig14's largest configuration point.
LARGEST_POINT = {
    "channels": 2,
    "ranks_per_channel": 4,
    "scheme": "chopim",
    "mode": AccessMode.BANK_PARTITIONED,
    "workload": NdaOpcode.DOT,
    "mix": "mix1",
}


def variants() -> list:
    """The measured (label, engine, backend, stepper) variants.

    ``cycle`` and ``event`` are the python-backend engines (the committed
    baseline keys, unchanged); ``kernel`` is the vectorized backend under
    the event engine with the resident stepper disabled (the PR-6 baseline
    key, still gateable on its own); ``kernel_stepper`` adds the resident
    multi-cycle stepper over the compiled C core, and ``kernel_pystepper``
    is the same stepper forced onto its pure-Python twin (the no-toolchain
    fallback, measured so the fallback's cost is an explicit number).  The
    kernel rows appear only when numpy is importable, the compiled row only
    when a C toolchain produced a loadable core, so every environment still
    produces a gateable report.
    """
    out = [("cycle", "cycle", "python", None),
           ("event", "event", "python", None)]
    if kernel_available():
        from repro.kernel import compiled_available

        out.append(("kernel", "event", "kernel", False))
        if compiled_available():
            out.append(("kernel_stepper", "event", "kernel", True))
        out.append(("kernel_pystepper", "event", "kernel", "python"))
    return out


def _largest_point_system(engine: str, platform: str = DEFAULT_PLATFORM,
                          backend: str = "python",
                          stepper=None) -> ChopimSystem:
    # ``stepper="python"`` forces the pure-Python stepper core: the
    # compiled library is hidden for the construction (binding happens at
    # wiring time only), after which the stepper keeps the core it bound.
    forced = stepper == "python"
    if forced:
        previous = os.environ.get("REPRO_FORCE_NO_COMPILED")
        os.environ["REPRO_FORCE_NO_COMPILED"] = "1"
        stepper = True
    try:
        system = ChopimSystem(
            config=resolve_config(platform, LARGEST_POINT["channels"],
                                  LARGEST_POINT["ranks_per_channel"]),
            mode=LARGEST_POINT["mode"], mix=LARGEST_POINT["mix"],
            throttle="next_rank", engine=engine, backend=backend,
            stepper=stepper)
    finally:
        if forced:
            if previous is None:
                del os.environ["REPRO_FORCE_NO_COMPILED"]
            else:
                os.environ["REPRO_FORCE_NO_COMPILED"] = previous
    system.set_nda_workload(LARGEST_POINT["workload"],
                            elements_per_rank=DEFAULT_ELEMENTS_PER_RANK)
    return system


def burst_summary(system: ChopimSystem) -> dict:
    """Aggregate burst-issue statistics over all NDA rank controllers."""
    total = {
        "enabled": getattr(system, "burst_enabled", False),
        "bursts_planned": 0,
        "commands_planned": 0,
        "commands_settled": 0,
        "bursts_completed": 0,
        "commands_per_burst": 0.0,
        "truncations": {},
    }
    for controller in system.rank_controllers.values():
        stats = controller.burst_stats()
        total["bursts_planned"] += stats["bursts_planned"]
        total["commands_planned"] += stats["commands_planned"]
        total["commands_settled"] += stats["commands_settled"]
        total["bursts_completed"] += stats["bursts_completed"]
        for cause, count in stats["truncations"].items():
            total["truncations"][cause] = (
                total["truncations"].get(cause, 0) + count)
    if total["bursts_planned"]:
        total["commands_per_burst"] = round(
            total["commands_settled"] / total["bursts_planned"], 2)
    return total


def bench_largest_point(cycles: int, warmup: int, repeats: int = 3) -> dict:
    """Cycles/sec for every variant on the largest fig14 point.

    Each variant runs ``repeats`` times and the fastest run is reported (the
    standard minimum-noise estimator: external load only ever slows a run
    down, so the best repeat is the closest to the true cost).
    """
    out = {"cycles": cycles, "warmup": warmup, "repeats": repeats, "point": {
        k: getattr(v, "value", v) for k, v in LARGEST_POINT.items()}}
    total = cycles + warmup
    for label, engine, backend, stepper in variants():
        best = None
        for _ in range(max(1, repeats)):
            system = _largest_point_system(engine, backend=backend,
                                           stepper=stepper)
            start = time.perf_counter()
            system.run(cycles=cycles, warmup=warmup)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best["seconds"]:
                best = {
                    "seconds": elapsed,
                    "cycles_per_second": total / elapsed,
                    "cycles_processed": system.engine.cycles_processed,
                    "cycles_skipped": system.engine.cycles_skipped,
                }
        if backend != "python":
            best["engine"] = engine
            best["backend"] = backend
            best["stepper"] = ("compiled" if stepper is True
                               else "python" if stepper == "python"
                               else "off")
        if label == "event":
            # Selective-wake scheduling statistics (deterministic across
            # repeats): per-unit wake probes, runs, dirty notifications and
            # skip ratios, so future perf PRs can see *which* unit forces
            # processed cycles without re-instrumenting.
            best["selective_wake"] = {
                "wake_probes_total": sum(system.engine.wake_probes),
                "dirty_notifications_total": sum(system.engine.hub.dirty_counts),
                "units": system.engine.wake_stats(),
            }
        if engine == "event":
            # Burst-issue fast-path statistics (deterministic): bursts
            # planned, commands settled through plans, truncation causes.
            best["burst"] = burst_summary(system)
        out[label] = best
    out["event_vs_cycle_speedup"] = (out["event"]["cycles_per_second"]
                                     / out["cycle"]["cycles_per_second"])
    if "kernel" in out:
        out["kernel_vs_event_speedup"] = (out["kernel"]["cycles_per_second"]
                                          / out["event"]["cycles_per_second"])
    for label in ("kernel_stepper", "kernel_pystepper"):
        if label in out:
            rate = out[label]["cycles_per_second"]
            out[f"{label}_vs_event_speedup"] = (
                rate / out["event"]["cycles_per_second"])
            out[f"{label}_vs_kernel_speedup"] = (
                rate / out["kernel"]["cycles_per_second"])
    return out


def bench_platforms(cycles: int, warmup: int, repeats: int = 3,
                    platforms=None) -> dict:
    """Per-platform throughput on the largest point, every variant.

    One entry per preset so the regression gate can key on
    ``(platform, variant)`` — a hot-path regression that only bites on a
    non-default geometry (more banks, different burst cadence) is invisible
    to the DDR4-only numbers.
    """
    names = list(platforms) if platforms is not None else platform_names()
    out = {"cycles": cycles, "warmup": warmup, "repeats": repeats}
    total = cycles + warmup
    for name in names:
        entry = {}
        for label, engine, backend, stepper in variants():
            best = None
            for _ in range(max(1, repeats)):
                system = _largest_point_system(engine, platform=name,
                                               backend=backend,
                                               stepper=stepper)
                start = time.perf_counter()
                system.run(cycles=cycles, warmup=warmup)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best["seconds"]:
                    best = {
                        "seconds": elapsed,
                        "cycles_per_second": total / elapsed,
                        "cycles_processed": system.engine.cycles_processed,
                        "cycles_skipped": system.engine.cycles_skipped,
                    }
            if engine == "event" and label == "event":
                best["burst"] = burst_summary(system)
            entry[label] = best
        entry["event_vs_cycle_speedup"] = (
            entry["event"]["cycles_per_second"]
            / entry["cycle"]["cycles_per_second"])
        if "kernel" in entry:
            entry["kernel_vs_event_speedup"] = (
                entry["kernel"]["cycles_per_second"]
                / entry["event"]["cycles_per_second"])
        if "kernel_stepper" in entry:
            entry["kernel_stepper_vs_event_speedup"] = (
                entry["kernel_stepper"]["cycles_per_second"]
                / entry["event"]["cycles_per_second"])
        out[name] = entry
    return out


#: Repository layers used to attribute profile entries.
_LAYERS = ("addressing", "dram", "memctrl", "nda", "engine", "host",
           "osmodel", "core", "apps", "experiments", "runtime", "utils")


def _layer_of(filename: str) -> str:
    """The repro layer a profiled function belongs to (or 'stdlib/other')."""
    path = filename.replace("\\", "/")
    marker = "/repro/"
    if marker in path:
        tail = path.split(marker, 1)[1]
        head = tail.split("/", 1)[0]
        if head in _LAYERS:
            return head
        return "core"
    return "stdlib/other"


def profile_largest_point(cycles: int, warmup: int, top: int = 20) -> dict:
    """cProfile every variant on the largest point; top-N cumtime per layer.

    The kernel variant additionally runs once (outside cProfile, whose
    tracing would distort sub-microsecond numpy calls) with the kernel's
    own primitive counters enabled, attributing wall-clock to ``pack`` /
    ``scan`` / ``settle`` / ``scatter`` — the number that shows whether
    numpy time or Python dispatch overhead dominates the backend.
    """
    result = {}
    for label, engine, backend, stepper in variants():
        system = _largest_point_system(engine, backend=backend,
                                       stepper=stepper)
        profiler = cProfile.Profile()
        profiler.enable()
        system.run(cycles=cycles, warmup=warmup)
        profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        rows = []
        for func, (cc, nc, tt, ct, _callers) in sorted(
                stats.stats.items(), key=lambda kv: kv[1][3], reverse=True):
            filename, line, name = func
            if name in ("<module>", "run", "run_until"):
                continue  # top-level drivers, not informative
            rows.append({
                "function": name,
                "file": os.path.basename(filename),
                "line": line,
                "layer": _layer_of(filename),
                "ncalls": nc,
                "tottime": round(tt, 4),
                "cumtime": round(ct, 4),
            })
            if len(rows) >= top:
                break
        result[label] = {"top_cumtime": rows}
        if engine == "event" and label == "event":
            # The profiled run's burst behaviour, next to the table it
            # explains (how much per-command work the plans absorbed).
            result[label]["burst"] = burst_summary(system)
        if backend == "kernel":
            result[label]["primitives"] = profile_kernel_primitives(
                cycles, warmup, stepper=stepper)
    result["dispatch_overhead"] = dispatch_overhead_microbench()
    return result


def profile_kernel_primitives(cycles: int, warmup: int, stepper=None) -> dict:
    """Wall-clock attribution of the kernel backend's vector primitives.

    Returns per-primitive calls, seconds and per-call microseconds plus the
    run's total wall-clock, so both the share of time spent inside the
    vector core (vs. the surrounding Python simulation loop) and the unit
    cost of each primitive are read directly from the report.  With the
    stepper active the stepper phases (``step_setup`` / ``step_run`` /
    ``step_exit``) and the compiled per-scan dispatches (``cscan``) appear
    alongside the numpy primitives.
    """
    from repro.kernel.profile import PROFILE

    system = _largest_point_system("event", backend="kernel",
                                   stepper=stepper)
    PROFILE.reset()
    PROFILE.enabled = True
    try:
        start = time.perf_counter()
        system.run(cycles=cycles, warmup=warmup)
        total_seconds = time.perf_counter() - start
    finally:
        PROFILE.enabled = False
    snapshot = PROFILE.snapshot()
    for entry in snapshot.values():
        entry["per_call_us"] = (
            round(entry["seconds"] / entry["calls"] * 1e6, 3)
            if entry["calls"] else 0.0)
    in_primitives = sum(entry["seconds"] for entry in snapshot.values())
    return {
        "total_seconds": round(total_seconds, 4),
        "in_primitives_seconds": round(in_primitives, 4),
        "in_primitives_share": round(in_primitives / total_seconds, 4),
        "per_primitive": snapshot,
    }


def dispatch_overhead_microbench(scans: int = 20000) -> dict:
    """Per-scan dispatch cost: one compiled C call vs the numpy batch pass.

    Runs the largest point briefly to populate real queue/timing state,
    then times the same FR-FCFS scan three ways on a throwaway system:

    * ``compiled_single_call_us`` — one ``repro_scan`` ctypes round trip
      per scan (what the stepper's per-issue probes pay);
    * ``numpy_batched_us`` — the PR-6 vectorized scan (one numpy pass over
      all slots; fixed dispatch overhead dominates at small queue depths);
    * ``pure_python_us`` — the pycore scalar twin (the no-toolchain floor).

    The compiled/numpy ratio is the dispatch-overhead headline: it is why
    routing per-issue scans through the C core (and fusing whole windows in
    ``repro_step``) beats adding more numpy vectorization.
    """
    if not kernel_available():
        return {"skipped": "kernel backend unavailable"}
    from repro.kernel import compiled_available
    from repro.kernel.core.pycore import py_scan

    system = _largest_point_system("event", backend="kernel", stepper=True)
    system.run(cycles=2000, warmup=500)
    kernel_stepper = system.kernel_stepper
    controller = system.channel_controllers[0]
    scheduler = controller.scheduler
    queue = controller.read_queue
    now = system.engine.cycles_processed + system.engine.cycles_skipped + 1
    out = {"scans": scans, "queue_depth": len(queue)}

    if kernel_stepper is not None and kernel_stepper.compiled:
        lib, ctx_ptr = kernel_stepper._lib, kernel_stepper._ctx_ptr
        out_ptr = kernel_stepper._out_ptr
        start = time.perf_counter()
        for _ in range(scans):
            lib.repro_scan(ctx_ptr, 0, 0, now, out_ptr)
        out["compiled_single_call_us"] = round(
            (time.perf_counter() - start) / scans * 1e6, 3)

    core = scheduler._core
    scheduler._core = None  # force the numpy batch path
    try:
        start = time.perf_counter()
        for _ in range(scans):
            scheduler._select_bucketed(queue, now)
        out["numpy_batched_us"] = round(
            (time.perf_counter() - start) / scans * 1e6, 3)
    finally:
        scheduler._core = core

    if kernel_stepper is not None:
        state = kernel_stepper.state
        start = time.perf_counter()
        for _ in range(scans):
            py_scan(state, 0, 0, now)
        out["pure_python_us"] = round(
            (time.perf_counter() - start) / scans * 1e6, 3)

    if "compiled_single_call_us" in out and out.get("numpy_batched_us"):
        out["numpy_vs_compiled_dispatch_ratio"] = round(
            out["numpy_batched_us"] / out["compiled_single_call_us"], 1)
    if not compiled_available():
        out["note"] = "compiled core unavailable; C row omitted"
    return out


def bench_fig14_sweep(cycles: int, warmup: int) -> dict:
    """Wall-clock for the fig14 sweep: legacy serial vs the sweep runner."""
    common = dict(cycles=cycles, warmup=warmup,
                  elements_per_rank=DEFAULT_ELEMENTS_PER_RANK)
    legacy_params = sweep_params(engine="cycle", **common)
    new_params = sweep_params(engine="event", **common)

    start = time.perf_counter()
    legacy_rows = [_point(**params) for params in legacy_params]
    legacy_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-sweep-cache-") as cache:
        start = time.perf_counter()
        cold_rows = run_sweep(_point, new_params, cache_dir=cache)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm_rows = run_sweep(_point, new_params, cache_dir=cache)
        warm_seconds = time.perf_counter() - start

    assert len(legacy_rows) == len(cold_rows) == len(warm_rows)
    return {
        "points": len(legacy_rows),
        "cycles_per_point": cycles + warmup,
        "workers": os.cpu_count() or 1,
        "legacy_serial_cycle_engine_seconds": legacy_seconds,
        "sweep_runner_event_engine_seconds": cold_seconds,
        "sweep_runner_cached_regeneration_seconds": warm_seconds,
        "speedup_cold": legacy_seconds / cold_seconds,
        "speedup_cached_regeneration": legacy_seconds / max(warm_seconds, 1e-9),
    }


def bench_sweep_service(points: int = 64, spin: int = 20000,
                        recovery_points: int = 60) -> dict:
    """Sweep-service overhead plus a miniature recovery drill.

    * throughput of trivial points through the serial in-process path, the
      supervised worker pool, and the supervised pool with journaling on —
      the deltas between them are the supervision and durability overheads
      the service adds on top of raw point execution;
    * a small crash/fault/resume proof (``sweeprunner.selftest``): injected
      crashes/hangs/corrupt rows plus a SIGKILLed driver incarnation,
      resumed to bit-identical rows.  Its stats land in the JSON so CI logs
      show recovery behaviour (retries, respawns, lease bound) over time.
    """
    from repro.experiments.sweeprunner.selftest import (
        _canonical_point,
        proof_params,
        run_proof,
    )

    point = _canonical_point()
    params = proof_params(points, spin, sleep=0.0)
    # At least two workers even on a single-CPU runner: one worker would
    # take the serial in-process path and measure nothing supervised.
    workers = max(2, min(4, os.cpu_count() or 1))

    def timed(options: SweepOptions) -> float:
        start = time.perf_counter()
        outcome = run_sweep_outcome(point, params, options=options)
        seconds = time.perf_counter() - start
        assert outcome.ok and len(outcome.rows) == points
        return seconds

    serial_seconds = timed(SweepOptions(processes=1, cache_dir="",
                                        journal=False))
    supervised_seconds = timed(SweepOptions(processes=workers, cache_dir="",
                                            journal=False))
    with tempfile.TemporaryDirectory(prefix="repro-sweep-journal-") as tmp:
        journaled_seconds = timed(SweepOptions(processes=workers,
                                               cache_dir=tmp))

    recovery = run_proof(points=recovery_points, fault_rate=0.1, seed=7,
                         kill_after=8, workers=workers, max_retries=3,
                         task_timeout=1.5, spin=500, sleep=0.005,
                         verbose=False)
    recovery_keys = ("ok", "done_at_kill", "cache_hits_on_resume", "retries",
                     "worker_respawns", "timeouts", "crashes", "corrupt_rows",
                     "max_leases_observed", "lease_bound")
    return {
        "points": points,
        "spin": spin,
        "workers": workers,
        "serial_points_per_second": points / serial_seconds,
        "supervised_points_per_second": points / supervised_seconds,
        "journaled_points_per_second": points / journaled_seconds,
        "supervision_overhead_seconds": supervised_seconds - serial_seconds,
        "journal_overhead_seconds": journaled_seconds - supervised_seconds,
        "recovery": {key: recovery[key] for key in recovery_keys},
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLES,
                        help="measured cycles for the largest point")
    parser.add_argument("--warmup", type=int, default=DEFAULT_WARMUP,
                        help="warmup cycles for the largest point")
    parser.add_argument("--sweep-cycles", type=int, default=DEFAULT_CYCLES,
                        help="measured cycles per fig14 sweep point (kept at "
                             "the full default even for smoke runs so sweep "
                             "wall-clock stays comparable to the committed "
                             "baseline)")
    parser.add_argument("--sweep-warmup", type=int, default=DEFAULT_WARMUP,
                        help="warmup cycles per fig14 sweep point")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats per engine on the largest point "
                             "(best run reported)")
    parser.add_argument("--platforms", nargs="*", default=None,
                        metavar="NAME",
                        help="platform presets for the per-platform section "
                             "(default: every registered preset; pass an "
                             "empty list to skip the section)")
    parser.add_argument("--platform-repeats", type=int, default=3,
                        help="repeats per engine per platform entry")
    parser.add_argument("--profile", action="store_true",
                        help="record a cProfile top-20 cumtime table per "
                             "engine into the JSON")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_engine.json")
    args = parser.parse_args(argv)

    result = {
        "benchmark": "event engine vs cycle engine, fig14 scaling sweep",
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count() or 1,
        "largest_point": bench_largest_point(args.cycles, args.warmup,
                                             args.repeats),
        "fig14_sweep": bench_fig14_sweep(args.sweep_cycles, args.sweep_warmup),
        "sweep_service": bench_sweep_service(),
    }
    if args.platforms is None or args.platforms:
        result["platforms"] = bench_platforms(
            args.cycles, args.warmup, args.platform_repeats,
            platforms=args.platforms)
    if args.profile:
        result["profile"] = profile_largest_point(args.cycles, args.warmup)
    args.output.write_text(json.dumps(result, indent=2) + "\n",
                           encoding="utf-8")
    print(json.dumps(result, indent=2))
    print(f"\nwritten to {args.output}", file=sys.stderr)


if __name__ == "__main__":
    main()
