"""Benchmark: regenerate Figure 10 (impact of coarse-grain NDA operations)."""

from conftest import BENCH_CYCLES, BENCH_WARMUP, run_once

from repro.experiments.common import format_table
from repro.experiments.fig10_coarse import coarse_vs_fine_summary, run_coarse_grain_sweep

GRANULARITIES = (1, 16, 256, 4096)
RANK_CONFIGS = ((2, 2), (2, 4))


def test_fig10_coarse_grain_sweep(benchmark):
    rows = run_once(benchmark, run_coarse_grain_sweep,
                    granularities=GRANULARITIES, rank_configs=RANK_CONFIGS,
                    cycles=BENCH_CYCLES, warmup=BENCH_WARMUP)
    print("\nFigure 10 — host IPC and NDA BW utilization vs. cache blocks per "
          "NDA instruction")
    print(format_table(rows))
    summary = coarse_vs_fine_summary(rows)
    benchmark.extra_info["rows"] = [
        {k: (round(v, 4) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]
    benchmark.extra_info["summary"] = {k: round(v, 3) for k, v in summary.items()}
    # Paper shape: coarse-grain operations improve NDA utilization (and never
    # hurt the host) relative to fine-grain single-cache-block instructions.
    for key, gain in summary.items():
        if key.endswith("nda_util_gain"):
            assert gain > 1.0
