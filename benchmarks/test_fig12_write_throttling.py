"""Benchmark: regenerate Figure 12 (stochastic issue and next-rank prediction)."""

from conftest import BENCH_CYCLES, BENCH_WARMUP, run_once

from repro.experiments.common import format_table
from repro.experiments.fig12_throttle import run_write_throttling, tradeoff_summary

MIXES = ["mix1", "mix5", "mix8"]


def test_fig12_write_throttling(benchmark):
    rows = run_once(benchmark, run_write_throttling, mixes=MIXES,
                    cycles=BENCH_CYCLES, warmup=BENCH_WARMUP)
    print("\nFigure 12 — NDA write throttling policies (COPY workload)")
    print(format_table(rows))
    summary = tradeoff_summary(rows)
    benchmark.extra_info["rows"] = [
        {k: (round(v, 4) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]
    benchmark.extra_info["summary"] = {
        policy: {k: round(v, 3) for k, v in values.items()}
        for policy, values in summary.items()
    }
    # Paper takeaway 3: throttling NDA writes protects the host; unthrottled
    # issue maximizes NDA bandwidth at the highest host cost.
    assert summary["issue_if_idle"]["host_ipc"] <= summary["predict_next_rank"]["host_ipc"]
    assert (summary["issue_if_idle"]["nda_bw_utilization"]
            >= summary["predict_next_rank"]["nda_bw_utilization"])
