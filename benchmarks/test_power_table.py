"""Benchmark: regenerate the Section VII memory-power analysis."""

from conftest import BENCH_CYCLES, BENCH_WARMUP, run_once

from repro.experiments.common import format_table
from repro.experiments.power_table import concurrent_below_host_max, run_power_analysis


def test_memory_power_under_concurrent_access(benchmark):
    rows = run_once(benchmark, run_power_analysis, mix="mix1",
                    cycles=BENCH_CYCLES, warmup=BENCH_WARMUP)
    print("\nSection VII — memory power under concurrent access")
    print(format_table(rows))
    benchmark.extra_info["rows"] = [
        {k: (round(v, 3) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]
    # Paper takeaway 7: operating all ranks for concurrent access stays within
    # the host-only theoretical power envelope.
    assert concurrent_below_host_max(rows)
    concurrent = next(r for r in rows if str(r["scenario"]).startswith("concurrent"))
    assert concurrent["nda_power_w"] > 0.0
