"""Benchmark: regenerate Figure 15 (SVRG collaboration benefits)."""

from conftest import run_once

from repro.experiments.common import format_table
from repro.experiments.fig15_svrg import run_svrg_convergence, run_svrg_scaling

DATASET = {"num_samples": 1024, "num_features": 128, "classes": 4}


def test_fig15a_convergence_trajectories(benchmark):
    histories = run_once(benchmark, run_svrg_convergence, num_ndas=8,
                         outer_iterations=8, dataset_kwargs=DATASET)
    print("\nFigure 15a — SVRG training-loss trajectories (final points)")
    rows = [{
        "configuration": name,
        "final_loss_gap": history[-1].loss_gap,
        "wall_clock_ms": history[-1].wall_clock_seconds * 1e3,
    } for name, history in histories.items()]
    print(format_table(rows, float_format="{:.5f}"))
    benchmark.extra_info["final_points"] = {
        name: {"gap": round(history[-1].loss_gap, 6),
               "seconds": round(history[-1].wall_clock_seconds, 6)}
        for name, history in histories.items()
    }
    # Shape: for equal epoch settings the accelerated run finishes its epochs
    # in less wall-clock time than host-only, and the delayed-update run in
    # less time than the serialized accelerated run.
    assert (histories["ACC_epoch_N/4"][-1].wall_clock_seconds
            < histories["HO_epoch_N/4"][-1].wall_clock_seconds)
    assert (histories["DelayedUpdate"][-1].wall_clock_seconds
            < histories["ACC_epoch_N/4"][-1].wall_clock_seconds)


def test_fig15b_speedup_scaling(benchmark):
    rows = run_once(benchmark, run_svrg_scaling, nda_counts=(4, 8, 16),
                    outer_iterations=8, dataset_kwargs=DATASET)
    print("\nFigure 15b — SVRG speedup over host-only vs. NDA count")
    print(format_table(rows, float_format="{:.4f}"))
    benchmark.extra_info["rows"] = [
        {k: (round(v, 5) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]
    # Paper takeaway 6: collaborative host-NDA processing speeds up SVRG; the
    # accelerated speedup grows with the NDA count.
    speedups = [r["acc_best_speedup"] for r in rows]
    assert all(s is not None and s > 1.0 for s in speedups)
    assert speedups[-1] >= speedups[0]
    delayed = [r["delayed_update_speedup"] for r in rows if r["delayed_update_speedup"]]
    assert delayed and max(delayed) > 1.0
