"""CI gate: fail when engine throughput regresses vs the committed baseline.

Compares a fresh (smoke-sized) benchmark run against the committed
``BENCH_engine.json`` and exits non-zero on a regression beyond
``--tolerance`` (default 30%) in either

* the ``cycles_per_second`` of the cycle or event engine on the largest
  fig14 point, or
* the fig14 sweep throughput (simulated cycles per wall-clock second over
  the whole sweep — wall-clock normalized by ``points x cycles_per_point``
  so runs with different smoke cycle budgets stay comparable).

CI runners and the dev box differ in absolute speed, so the tolerance is
deliberately loose — the gate exists to catch order-of-magnitude hot-path
regressions (an accidental O(n) scan, a reintroduced per-probe allocation),
not single-digit noise.

Usage::

    python benchmarks/check_bench_regression.py --fresh bench_ci.json \
        [--baseline BENCH_engine.json] [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _sweep_cycles_per_second(report: dict) -> float:
    """Simulated cycles/sec of the cold event-engine fig14 sweep run."""
    sweep = report["fig14_sweep"]
    total_cycles = sweep["points"] * sweep["cycles_per_point"]
    return total_cycles / sweep["sweep_runner_event_engine_seconds"]


def check(fresh: dict, baseline: dict, tolerance: float) -> int:
    status = 0
    for engine in ("cycle", "event"):
        base = baseline["largest_point"][engine]["cycles_per_second"]
        new = fresh["largest_point"][engine]["cycles_per_second"]
        floor = base * (1.0 - tolerance)
        verdict = "OK" if new >= floor else "REGRESSION"
        print(f"{engine}: fresh {new:.0f} cycles/s vs baseline {base:.0f} "
              f"(floor {floor:.0f}) -> {verdict}")
        if new < floor:
            status = 1
    if (fresh["fig14_sweep"]["cycles_per_point"]
            != baseline["fig14_sweep"]["cycles_per_point"]):
        # Fixed per-point overhead (system construction, runner spawn) is
        # not proportional to cycles, so cross-budget throughput comparison
        # would eat most of the tolerance in normalization bias.  CI keeps
        # the sweep at the baseline budget (bench_engine --sweep-cycles
        # defaults to it); a deliberate local smoke run just skips the gate.
        print("fig14 sweep: cycle budget differs from baseline "
              f"({fresh['fig14_sweep']['cycles_per_point']} vs "
              f"{baseline['fig14_sweep']['cycles_per_point']}) -> SKIPPED")
        return status
    base = _sweep_cycles_per_second(baseline)
    new = _sweep_cycles_per_second(fresh)
    floor = base * (1.0 - tolerance)
    verdict = "OK" if new >= floor else "REGRESSION"
    print(f"fig14 sweep: fresh {new:.0f} cycles/s vs baseline {base:.0f} "
          f"(floor {floor:.0f}) -> {verdict}")
    if new < floor:
        status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", type=Path, required=True,
                        help="freshly generated benchmark JSON")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_engine.json")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional slowdown before failing")
    args = parser.parse_args(argv)
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    return check(fresh, baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
