"""CI gate: fail when engine throughput regresses vs the committed baseline.

Compares the ``cycles_per_second`` of a fresh (smoke-sized) benchmark run
against the committed ``BENCH_engine.json`` and exits non-zero when either
engine is more than ``--tolerance`` (default 30%) slower.  CI runners and the
dev box differ in absolute speed, so the tolerance is deliberately loose —
the gate exists to catch order-of-magnitude hot-path regressions (an
accidental O(n) scan, a reintroduced per-probe allocation), not single-digit
noise.

Usage::

    python benchmarks/check_bench_regression.py --fresh bench_ci.json \
        [--baseline BENCH_engine.json] [--tolerance 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def check(fresh: dict, baseline: dict, tolerance: float) -> int:
    status = 0
    for engine in ("cycle", "event"):
        base = baseline["largest_point"][engine]["cycles_per_second"]
        new = fresh["largest_point"][engine]["cycles_per_second"]
        floor = base * (1.0 - tolerance)
        verdict = "OK" if new >= floor else "REGRESSION"
        print(f"{engine}: fresh {new:.0f} cycles/s vs baseline {base:.0f} "
              f"(floor {floor:.0f}) -> {verdict}")
        if new < floor:
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", type=Path, required=True,
                        help="freshly generated benchmark JSON")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_engine.json")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional slowdown before failing")
    args = parser.parse_args(argv)
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    return check(fresh, baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
