"""CI gate: fail when engine throughput regresses vs the committed baseline.

Compares a fresh (smoke-sized) benchmark run against the committed
``BENCH_engine.json`` using a **per-metric tolerance map**:

* ``cycles_per_second`` of the cycle and event engines on the largest fig14
  point, and the fig14 sweep throughput, carry a *hard* tolerance (default
  30%): dropping below the floor fails the job.
* burst-issue counters (bursts planned, commands per burst) carry an
  *informational* tolerance: a large relative drop is reported in the diff
  table but never fails the job — they depend on the cycle budget and exist
  so a silently-disabled fast path is visible in CI logs.
* sweep-service metrics (supervised/journaled points/sec, the recovery
  drill's verdict) are informational for the same reason: process spawn and
  IPC costs dominate trivial-point throughput and vary across runners,
  while recovery correctness is gated hard by the test suite already.
* per-platform entries (the ``platforms`` section) are gated hard per
  ``(platform, backend, stepper)`` variant — ``cycle``, ``event``, the
  vectorized ``kernel`` backend, the compiled ``kernel_stepper`` and the
  pure-python ``kernel_pystepper`` each against their own committed
  baseline; variants or presets recorded in only one of the two reports
  are skipped, so the registry can grow (or a no-numpy environment can
  omit the kernel rows, or a no-toolchain environment the compiled
  stepper row) without breaking the gate.

The result is printed as a readable diff table (metric, fresh, baseline,
floor, verdict) instead of a bare assert.

CI runners and the dev box differ in absolute speed, so the hard tolerance
is deliberately loose — the gate exists to catch order-of-magnitude hot-path
regressions (an accidental O(n) scan, a reintroduced per-probe allocation),
not single-digit noise.

``--update-baseline`` rewrites the committed baseline file from the fresh
report (after printing the diff table for the record) instead of gating —
the supported way to refresh ``BENCH_engine.json`` when a perf PR moves the
numbers deliberately.

Usage::

    python benchmarks/check_bench_regression.py --fresh bench_ci.json \
        [--baseline BENCH_engine.json] [--tolerance 0.30] [--update-baseline]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional


def _sweep_cycles_per_second(report: dict) -> Optional[float]:
    """Simulated cycles/sec of the cold event-engine fig14 sweep run."""
    sweep = report["fig14_sweep"]
    total_cycles = sweep["points"] * sweep["cycles_per_point"]
    return total_cycles / sweep["sweep_runner_event_engine_seconds"]


def _burst_metric(key: str) -> Callable[[dict], Optional[float]]:
    def getter(report: dict) -> Optional[float]:
        burst = report["largest_point"].get("event", {}).get("burst")
        if not burst or not burst.get("enabled", False):
            return None
        return float(burst.get(key, 0.0))
    return getter


@dataclass
class Metric:
    """One gated benchmark metric: where to read it and how hard to gate."""

    name: str
    getter: Callable[[dict], Optional[float]]
    #: Allowed fractional drop before the verdict flips; ``None`` inherits
    #: the --tolerance default.
    tolerance: Optional[float]
    #: Hard metrics fail the job; informational ones only flag the table.
    hard: bool


#: The tolerance map.  cycles/sec metrics gate hard at the CLI tolerance;
#: burst counters are looser and informational only.
def _sweep_service_metric(key: str) -> Callable[[dict], Optional[float]]:
    def getter(report: dict) -> Optional[float]:
        section = report.get("sweep_service")
        if not isinstance(section, dict) or key not in section:
            return None
        return float(section[key])
    return getter


def _sweep_service_recovery_ok(report: dict) -> Optional[float]:
    """1.0 when the benchmark's recovery drill passed, 0.0 when it failed."""
    section = report.get("sweep_service")
    if not isinstance(section, dict):
        return None
    return 1.0 if section.get("recovery", {}).get("ok") else 0.0


def _largest_point_metric(variant: str) -> Callable[[dict], Optional[float]]:
    def getter(report: dict) -> Optional[float]:
        entry = report["largest_point"].get(variant)
        if not entry:
            return None
        return float(entry["cycles_per_second"])
    return getter


METRICS = [
    Metric("largest_point.cycle.cycles_per_second",
           _largest_point_metric("cycle"), None, hard=True),
    Metric("largest_point.event.cycles_per_second",
           _largest_point_metric("event"), None, hard=True),
    Metric("largest_point.kernel.cycles_per_second",
           _largest_point_metric("kernel"), None, hard=True),
    # The stepper axis gates hard per variant: the compiled stepper row is
    # absent without a C toolchain and the pure-python stepper row is
    # absent without numpy — both skip cleanly — but where an environment
    # records a variant, a regression against its own baseline fails.
    Metric("largest_point.kernel_stepper.cycles_per_second",
           _largest_point_metric("kernel_stepper"), None, hard=True),
    Metric("largest_point.kernel_pystepper.cycles_per_second",
           _largest_point_metric("kernel_pystepper"), None, hard=True),
    Metric("fig14_sweep.cycles_per_second", _sweep_cycles_per_second,
           None, hard=True),
    Metric("burst.bursts_planned", _burst_metric("bursts_planned"),
           0.50, hard=False),
    Metric("burst.commands_per_burst", _burst_metric("commands_per_burst"),
           0.50, hard=False),
    # Sweep-service numbers are informational: scheduling throughput on
    # trivial points is dominated by process/IPC costs that vary wildly
    # across runners, and the recovery drill's verdict is asserted hard by
    # the test suite — here it only needs to be visible in the diff table.
    Metric("sweep_service.supervised_points_per_second",
           _sweep_service_metric("supervised_points_per_second"),
           0.50, hard=False),
    Metric("sweep_service.journaled_points_per_second",
           _sweep_service_metric("journaled_points_per_second"),
           0.50, hard=False),
    Metric("sweep_service.recovery.ok", _sweep_service_recovery_ok,
           0.0, hard=False),
]


def _platform_metric(name: str, engine: str) -> Callable[[dict], Optional[float]]:
    def getter(report: dict) -> Optional[float]:
        section = report.get("platforms", {}).get(name)
        if not isinstance(section, dict):
            return None
        entry = section.get(engine)
        if not entry:
            return None
        return float(entry["cycles_per_second"])
    return getter


def platform_metrics(fresh: dict, baseline: dict) -> list:
    """Per-(platform, backend, stepper) gates over presets both reports carry.

    Each platform x variant pair is gated independently — a regression
    that only bites on one preset's geometry (say, HBM's 8 channels or
    DDR5's 32 banks), one backend's hot path, or one stepper rung of the
    fallback ladder fails on that row even when the DDR4/python numbers
    are fine.  Presets or variants present in only one of the two reports
    are skipped (they render as "SKIPPED (not recorded)" rows), so adding
    a preset — or running without numpy (no kernel rows) or without a C
    toolchain (no compiled-stepper row) — never breaks the gate.
    """
    fresh_platforms = fresh.get("platforms", {})
    baseline_platforms = baseline.get("platforms", {})
    names = sorted(set(fresh_platforms) | set(baseline_platforms))
    metrics = []
    for name in names:
        # Preset entries are dicts; scalar values (cycles/warmup/repeats
        # and whatever bookkeeping bench_platforms grows next) are
        # section-level metadata, not presets.
        if not isinstance(fresh_platforms.get(name)
                          or baseline_platforms.get(name), dict):
            continue
        for variant in ("cycle", "event", "kernel",
                        "kernel_stepper", "kernel_pystepper"):
            metrics.append(Metric(
                f"platforms.{name}.{variant}.cycles_per_second",
                _platform_metric(name, variant), None, hard=True))
    return metrics


def check(fresh: dict, baseline: dict, tolerance: float) -> int:
    skip_sweep = (fresh["fig14_sweep"]["cycles_per_point"]
                  != baseline["fig14_sweep"]["cycles_per_point"])
    rows = []
    status = 0
    for metric in METRICS + platform_metrics(fresh, baseline):
        if metric.name.startswith("fig14_sweep") and skip_sweep:
            # Fixed per-point overhead (system construction, runner spawn)
            # is not proportional to cycles, so cross-budget throughput
            # comparison would eat most of the tolerance in normalization
            # bias.  CI keeps the sweep at the baseline budget; a deliberate
            # local smoke run just skips the gate.
            rows.append((metric.name, "-", "-", "-", "SKIPPED (budget differs)"))
            continue
        base = metric.getter(baseline)
        new = metric.getter(fresh)
        if base is None or new is None:
            rows.append((metric.name, "-" if new is None else f"{new:.1f}",
                         "-" if base is None else f"{base:.1f}", "-",
                         "SKIPPED (not recorded)"))
            continue
        tol = tolerance if metric.tolerance is None else metric.tolerance
        floor = base * (1.0 - tol)
        ok = new >= floor
        if ok:
            verdict = "OK"
        elif metric.hard:
            verdict = "REGRESSION"
            status = 1
        else:
            verdict = "BELOW (informational)"
        rows.append((metric.name, f"{new:.1f}", f"{base:.1f}",
                     f"{floor:.1f}", verdict))

    widths = [max(len(str(row[i])) for row in rows + [
        ("metric", "fresh", "baseline", "floor", "verdict")])
        for i in range(5)]
    header = ("metric", "fresh", "baseline", "floor", "verdict")
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    print()
    print("result:", "REGRESSION DETECTED" if status else "all hard gates OK")
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", type=Path, required=True,
                        help="freshly generated benchmark JSON")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_engine.json")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional slowdown for hard metrics")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the --baseline file from the fresh "
                             "report instead of gating (the diff table is "
                             "still printed for the record)")
    args = parser.parse_args(argv)
    fresh = json.loads(args.fresh.read_text(encoding="utf-8"))
    if args.update_baseline:
        if args.baseline.exists():
            baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
            check(fresh, baseline, args.tolerance)
        args.baseline.write_text(json.dumps(fresh, indent=2) + "\n",
                                 encoding="utf-8")
        print(f"baseline updated: {args.baseline}")
        return 0
    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    return check(fresh, baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
