"""Benchmark: regenerate Figure 2 (rank idle-time breakdown per mix)."""

from conftest import BENCH_CYCLES, BENCH_WARMUP, run_once

from repro.experiments.common import format_table
from repro.experiments.fig02_idle import run_idle_histogram, short_idle_fraction

MIXES = ["mix0", "mix1", "mix4", "mix8"]


def test_fig02_rank_idle_breakdown(benchmark):
    rows = run_once(benchmark, run_idle_histogram, mixes=MIXES,
                    cycles=BENCH_CYCLES, warmup=BENCH_WARMUP)
    print("\nFigure 2 — rank idle-time breakdown vs. idleness granularity")
    print(format_table(rows))
    benchmark.extra_info["rows"] = [
        {k: (round(v, 4) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]
    by_mix = {r["mix"]: r for r in rows}
    # Paper shape: busier mixes are busier, and for memory-intensive mixes the
    # majority of idle time sits in short (<250 cycle) gaps.
    assert by_mix["mix1"]["Busy"] > by_mix["mix8"]["Busy"]
    assert short_idle_fraction(by_mix["mix1"]) > 0.5
