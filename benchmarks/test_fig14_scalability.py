"""Benchmark: regenerate Figure 14 (Chopim vs. rank partitioning scalability)."""

from conftest import BENCH_CYCLES, BENCH_WARMUP, run_once

from repro.experiments.common import format_table
from repro.experiments.fig14_scaling import (
    FULL_RANK_CONFIGS,
    chopim_advantage,
    run_scalability_comparison,
    scaling_factor,
)

WORKLOADS = ("dot", "copy", "svrg", "cg", "sc")


def test_fig14_chopim_vs_rank_partitioning(benchmark):
    rows = run_once(benchmark, run_scalability_comparison,
                    rank_configs=FULL_RANK_CONFIGS, workloads=WORKLOADS,
                    cycles=BENCH_CYCLES, warmup=BENCH_WARMUP)
    print("\nFigure 14 — scalability: Chopim vs. rank partitioning")
    print(format_table(rows))
    advantage = chopim_advantage(rows)
    benchmark.extra_info["rows"] = [
        {k: (round(v, 4) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]
    benchmark.extra_info["chopim_over_rank_partitioning"] = {
        k: round(v, 3) for k, v in advantage.items()
    }
    # Paper takeaway 5: Chopim delivers more NDA bandwidth than rank
    # partitioning for the read-intensive extreme on the baseline system and
    # scales at least as well when ranks double.
    assert advantage["2x2:dot"] > 1.0
    chopim_scale = scaling_factor(rows, "chopim", "dot")
    rank_scale = scaling_factor(rows, "rank_partitioning", "dot")
    benchmark.extra_info["scaling_chopim_dot"] = round(chopim_scale or 0.0, 3)
    benchmark.extra_info["scaling_rank_partitioning_dot"] = round(rank_scale or 0.0, 3)
    assert chopim_scale is not None and chopim_scale > 1.3
