"""Benchmark: regenerate Figure 13 (NDA operation type and operand size)."""

from conftest import BENCH_CYCLES, BENCH_WARMUP, run_once

from repro.experiments.common import format_table
from repro.experiments.fig13_opsize import (
    ALL_OPERATIONS,
    run_operation_size_sweep,
    write_intensity_correlation,
)

SIZES = ("small", "medium")


def test_fig13_operation_and_size_sweep(benchmark):
    rows = run_once(benchmark, run_operation_size_sweep,
                    operations=ALL_OPERATIONS, sizes=SIZES,
                    include_async_small=True,
                    cycles=BENCH_CYCLES, warmup=BENCH_WARMUP)
    print("\nFigure 13 — impact of NDA operation type and operand size")
    print(format_table(rows))
    benchmark.extra_info["rows"] = [
        {k: (round(v, 4) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]
    correlation = write_intensity_correlation(rows, size="medium")
    benchmark.extra_info["write_intensity_consistency"] = round(correlation, 3)
    # Paper takeaway 4: NDA performance is inversely related to write
    # intensity (checked as majority pairwise consistency), and larger
    # operands achieve at least the bandwidth of small ones.
    assert correlation >= 0.5
    by_key = {(r["operation"], r["size"]): r for r in rows}
    assert (by_key[("copy", "medium")]["nda_bw_utilization"]
            >= by_key[("copy", "small")]["nda_bw_utilization"] * 0.9)
