"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures through the
``repro.experiments`` entry points.  Each runs a single measured round (the
simulations inside are deterministic, so repetition adds no information) and
attaches the regenerated rows to ``benchmark.extra_info`` so the numbers land
in the pytest-benchmark JSON output.
"""

from __future__ import annotations

import pytest

#: Measured DRAM cycles per configuration point.  Large enough for the memory
#: system to reach steady state; small enough that the whole suite finishes
#: in a few minutes.  Raise for closer-to-paper windows.
BENCH_CYCLES = 5000
BENCH_WARMUP = 400


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment once under pytest-benchmark and return its rows."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_cycles():
    return BENCH_CYCLES


@pytest.fixture
def bench_warmup():
    return BENCH_WARMUP
