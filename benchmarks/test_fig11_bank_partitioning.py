"""Benchmark: regenerate Figure 11 (shared vs. bank-partitioned concurrent access)."""

from conftest import BENCH_CYCLES, BENCH_WARMUP, run_once

from repro.experiments.common import format_table
from repro.experiments.fig11_bankpart import partitioning_speedup, run_bank_partitioning

MIXES = ["mix1", "mix5", "mix8"]


def test_fig11_bank_partitioning(benchmark):
    rows = run_once(benchmark, run_bank_partitioning, mixes=MIXES,
                    cycles=BENCH_CYCLES, warmup=BENCH_WARMUP)
    print("\nFigure 11 — concurrent access to different memory regions")
    print(format_table(rows))
    gains = partitioning_speedup(rows, operation="dot")
    benchmark.extra_info["rows"] = [
        {k: (round(v, 4) if isinstance(v, float) else v) for k, v in r.items()}
        for r in rows
    ]
    benchmark.extra_info["dot_partitioning_gain"] = {k: round(v, 3)
                                                     for k, v in gains.items()}
    # Paper takeaway 2: bank partitioning substantially improves NDA
    # performance (1.5-2x in the paper) for the read-intensive DOT.  The gain
    # is largest for memory-intensive colocation (mix1); for the least
    # intensive mix the host barely conflicts and the gain shrinks toward 1.
    assert gains["mix1"] > 1.2
    assert all(gain > 0.85 for gain in gains.values())
    # Write-intensive COPY degrades host IPC more than DOT on every mix.
    for mix in MIXES:
        ipc = {(r["configuration"], r["operation"]): r["host_ipc"]
               for r in rows if r["mix"] == mix}
        assert ipc[("shared", "copy")] <= ipc[("shared", "dot")] * 1.05
