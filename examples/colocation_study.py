"""Colocation study: accelerated tasks sharing memory with host-only tasks.

The scenario the paper's bank partitioning targets (Section III-C): only a
subset of host tasks uses the NDAs, and the rest must not suffer from the
NDA's row-buffer interference.  This example sweeps the application mixes
(from the most to the least memory intensive) and compares three policies for
running the NDA DOT and COPY kernels alongside them:

* shared banks, no write throttling (the naive concurrent baseline),
* Chopim: bank partitioning + next-rank prediction,
* rank partitioning (prior work: NDAs get dedicated ranks).

Run with:  python examples/colocation_study.py
"""

from __future__ import annotations

from typing import Dict, List

from repro import AccessMode, ChopimSystem
from repro.experiments.common import format_table
from repro.nda.isa import NdaOpcode

CYCLES = 6000
WARMUP = 400
MIXES = ["mix1", "mix4", "mix8"]
POLICIES = [
    ("naive_shared", AccessMode.SHARED, "issue_if_idle"),
    ("chopim", AccessMode.BANK_PARTITIONED, "next_rank"),
    ("rank_partitioning", AccessMode.RANK_PARTITIONED, "next_rank"),
]


def run_point(mix: str, mode: AccessMode, throttle: str,
              opcode: NdaOpcode) -> Dict[str, float]:
    system = ChopimSystem(mode=mode, mix=mix, throttle=throttle)
    system.set_nda_workload(opcode, elements_per_rank=1 << 14)
    result = system.run(cycles=CYCLES, warmup=WARMUP)
    return {
        "host_ipc": result.host_ipc,
        "nda_gbs": result.nda_bandwidth_gbs,
        "power_w": result.energy.get("total_power_w", 0.0),
    }


def main() -> None:
    print("=== Colocation study: host-only tasks next to NDA-accelerated tasks ===\n")
    for opcode in (NdaOpcode.DOT, NdaOpcode.COPY):
        rows: List[Dict[str, object]] = []
        baselines: Dict[str, float] = {}
        for mix in MIXES:
            host_only = ChopimSystem(mode=AccessMode.HOST_ONLY, mix=mix)
            baselines[mix] = host_only.run(cycles=CYCLES, warmup=WARMUP).host_ipc
        for mix in MIXES:
            for name, mode, throttle in POLICIES:
                point = run_point(mix, mode, throttle, opcode)
                rows.append({
                    "mix": mix,
                    "policy": name,
                    "host_ipc": point["host_ipc"],
                    "host_retained": point["host_ipc"] / max(baselines[mix], 1e-9),
                    "nda_gbs": point["nda_gbs"],
                    "memory_power_w": point["power_w"],
                })
        print(f"--- NDA kernel: {opcode.value.upper()} ---")
        print(format_table(rows))
        print()

    print("Reading the tables: Chopim should retain most of the host-only IPC "
          "(especially for DOT) while moving far more NDA data than rank "
          "partitioning on the same number of ranks.")


if __name__ == "__main__":
    main()
