"""Quickstart: concurrent host + NDA access on one simulated system.

Builds the paper's baseline system (2 channels x 2 ranks of NDA-enabled DDR4,
4-core host running the most memory-intensive mix), turns on Chopim's bank
partitioning and next-rank prediction, runs the write-intensive COPY kernel
on the NDAs concurrently with the host, and prints the headline metrics —
host IPC, NDA bandwidth utilization (against the idealized idle-bandwidth
bound) and memory power.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import AccessMode, ChopimSystem
from repro.nda.isa import NdaOpcode

CYCLES = 8000
WARMUP = 500


def main() -> None:
    print("=== Chopim quickstart ===")
    print("Building the baseline system (Table II): 2 channels x 2 ranks, "
          "4-core host, mix1, bank partitioning + next-rank prediction\n")

    # Host-only reference: what the host achieves with the NDAs silent.
    host_only = ChopimSystem(mode=AccessMode.HOST_ONLY, mix="mix1")
    baseline = host_only.run(cycles=CYCLES, warmup=WARMUP)
    print("[1] Host-only baseline")
    print(baseline.summary())
    print()

    # Concurrent access: the NDAs stream the COPY kernel (the most
    # write-intensive Table I operation) while the host keeps running.
    system = ChopimSystem(mode=AccessMode.BANK_PARTITIONED, mix="mix1",
                          throttle="next_rank")
    system.set_nda_workload(NdaOpcode.COPY, elements_per_rank=1 << 14)
    result = system.run(cycles=CYCLES, warmup=WARMUP)
    print("[2] Concurrent host + NDA (COPY, bank-partitioned, next-rank prediction)")
    print(result.summary())
    print()

    host_retained = result.host_ipc / max(baseline.host_ipc, 1e-9)
    idle_captured = (result.nda_bw_utilization
                     / max(result.idealized_bw_utilization, 1e-9))
    print("[3] Takeaways")
    print(f"  host performance retained      : {host_retained:6.1%}")
    print(f"  idle rank bandwidth captured   : {idle_captured:6.1%}")
    print(f"  NDA bandwidth                  : {result.nda_bandwidth_gbs:6.2f} GB/s")
    print(f"  replicated FSMs still in sync  : {system.verify_fsm_sync()}")


if __name__ == "__main__":
    main()
