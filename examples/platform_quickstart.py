"""Quickstart on a non-default memory platform.

The same concurrent host + NDA scenario as ``quickstart.py`` — host-only
baseline, then bank-partitioned COPY with next-rank prediction — but on a
named platform preset instead of the paper's DDR4-2400.  The default here
is ``lpddr4-3200``; pass any registered preset::

    python examples/platform_quickstart.py                      # lpddr4-3200
    python examples/platform_quickstart.py --platform hbm2
    python examples/platform_quickstart.py --list

Everything downstream of the preset is derived: the DRAM cycle counts from
the preset's nanosecond parameters, the host's fixed-point tick ratio and
the PE clock from the derived command clock, the NDA burst cadence from
max(tCCD_S, tBL), and the bandwidth/energy accounting from the geometry.
"""

from __future__ import annotations

import argparse

from repro import AccessMode, ChopimSystem, get_platform, platform_config, platform_names
from repro.nda.isa import NdaOpcode

CYCLES = 8000
WARMUP = 500


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--platform", default="lpddr4-3200",
                        choices=platform_names(), metavar="NAME",
                        help="platform preset (default: lpddr4-3200)")
    parser.add_argument("--list", action="store_true",
                        help="list registered presets and exit")
    args = parser.parse_args()

    if args.list:
        for name in platform_names():
            spec = get_platform(name)
            print(f"{name:14s} {spec.description}")
        return

    spec = get_platform(args.platform)
    cfg = platform_config(args.platform)
    print(f"=== Chopim quickstart on {spec.name} ===")
    print(f"{spec.description}")
    print(f"command clock {cfg.org.dram_clock_ghz:.2f} GHz, "
          f"tCL={cfg.timing.tCL} tRCD={cfg.timing.tRCD} tBL={cfg.timing.tBL} "
          f"cycles, {cfg.org.banks_per_rank} banks/rank, "
          f"peak {cfg.org.peak_host_bandwidth_gbs:.1f} GB/s host, "
          f"{cfg.org.peak_rank_internal_bandwidth_gbs:.1f} GB/s per NDA\n")

    host_only = ChopimSystem(config=platform_config(args.platform),
                             mode=AccessMode.HOST_ONLY, mix="mix1")
    baseline = host_only.run(cycles=CYCLES, warmup=WARMUP)
    print("[1] Host-only baseline")
    print(baseline.summary())
    print()

    system = ChopimSystem(config=platform_config(args.platform),
                          mode=AccessMode.BANK_PARTITIONED, mix="mix1",
                          throttle="next_rank")
    system.set_nda_workload(NdaOpcode.COPY, elements_per_rank=1 << 14)
    result = system.run(cycles=CYCLES, warmup=WARMUP)
    print("[2] Concurrent host + NDA (COPY, bank-partitioned, next-rank prediction)")
    print(result.summary())
    print()

    host_retained = result.host_ipc / max(baseline.host_ipc, 1e-9)
    print("[3] Takeaways")
    print(f"  host performance retained : {host_retained:6.1%}")
    print(f"  NDA bandwidth             : {result.nda_bandwidth_gbs:6.2f} GB/s "
          f"({result.nda_bandwidth_gbs / max(cfg.org.peak_rank_internal_bandwidth_gbs * cfg.org.total_ranks, 1e-9):.1%} of aggregate NDA peak)")


if __name__ == "__main__":
    main()
