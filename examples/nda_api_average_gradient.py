"""The paper's Figure 8 example: average gradient through the NDA runtime API.

Reproduces the `average gradient` kernel of the SVRG summarization step using
the Chopim runtime: shared (colored) allocations for the matrix and vectors,
coarse-grain NDA operations (GEMV, XMY, SCAL), the host-side sigmoid, and the
asynchronous `parallel_for` macro operation of per-sample AXPYs followed by a
host reduction.  Functional results are checked against numpy, and the
simulated cycle cost of each phase is reported.

Run with:  python examples/nda_api_average_gradient.py
"""

from __future__ import annotations

import numpy as np

from repro.core.modes import AccessMode
from repro.runtime.api import ChopimRuntime

N_SAMPLES = 64     # rows of X processed by the macro operation
N_FEATURES = 512   # model dimension d


def main() -> None:
    print("=== Figure 8: average gradient on the NDA runtime API ===\n")
    runtime = ChopimRuntime(mode=AccessMode.BANK_PARTITIONED, mix="mix8")
    rng = np.random.default_rng(0)

    # --- Memory allocation (nda::SHARED / nda::PRIVATE of Figure 8) -------
    x = runtime.matrix(N_SAMPLES, N_FEATURES,
                       init=rng.standard_normal((N_SAMPLES, N_FEATURES)))
    w = runtime.vector(N_FEATURES, init=rng.standard_normal(N_FEATURES) * 0.01)
    y = runtime.vector(N_SAMPLES)
    v = runtime.vector(N_SAMPLES, init=rng.standard_normal(N_SAMPLES))
    a = runtime.vector(N_FEATURES)
    a_private = runtime.vector(N_FEATURES, private=True)
    labels = v.numpy().copy()

    start_cycle = runtime.system.now
    # --- Average gradient (Figure 8 body) ----------------------------------
    runtime.gemv(y, x, w)                 # y = X w
    runtime.xmy(v, v, y)                  # v = v (*) y
    runtime.host_sigmoid(v, v)            # host-side nonlinearity
    runtime.xmy(v, v, y)                  # v = v (*) y
    runtime.scal(v, 1.0 / N_SAMPLES)      # v = v / n
    gemv_cycles = runtime.system.now - start_cycle

    # parallel_for: one asynchronous AXPY per sample into the PE-private copy.
    macro = runtime.macro("average_gradient")
    x_data = x.numpy()
    v_data = v.numpy()
    for i in range(N_SAMPLES):
        runtime.axpy_macro(macro, a_private, float(v_data[i]), x_data[i])
    runtime.macro_wait(macro)
    macro_cycles = runtime.system.now - start_cycle - gemv_cycles

    runtime.host_reduce(a, a_private)     # global reduction through the host
    runtime.axpy(a, 1e-3, w)              # regularization term
    total_cycles = runtime.system.now - start_cycle

    # --- Check the functional result against plain numpy -------------------
    y_ref = x_data.astype(np.float64) @ w.numpy().astype(np.float64)
    v_ref = 1.0 / (1.0 + np.exp(-(labels * y_ref)))
    v_ref = v_ref * y_ref / N_SAMPLES
    reference = (v_ref[:, None] * x_data).sum(axis=0) + 1e-3 * w.numpy()
    error = np.max(np.abs(reference - a.numpy()))

    print(f"allocated shared region color      : {x.color}")
    print(f"operations submitted to the NDAs   : {runtime.operations_submitted}")
    print(f"macro operation AXPYs (async)      : {macro.launched}")
    print(f"GEMV/XMY/SCAL phase                : {gemv_cycles} DRAM cycles")
    print(f"parallel_for AXPY phase            : {macro_cycles} DRAM cycles")
    clock_ghz = runtime.system.config.org.dram_clock_ghz
    print(f"total simulated cost               : {total_cycles} DRAM cycles "
          f"({total_cycles / (clock_ghz * 1e3):.2f} us at {clock_ghz:g} GHz)")
    print(f"max |error| vs. numpy reference    : {error:.2e}")
    print(f"replicated FSMs in sync            : {runtime.system.verify_fsm_sync()}")


if __name__ == "__main__":
    main()
