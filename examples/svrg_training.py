"""SVRG case study: collaborative host + NDA training (paper Section IV).

Trains ℓ2-regularized multi-class logistic regression with SVRG under the
three execution strategies of Figure 15 — host-only, NDA-accelerated
(serialized) and delayed-update (parallel) — using NDA/host throughput
measured on the simulator, and reports the time each takes to reach the same
training-loss target.

Run with:  python examples/svrg_training.py
"""

from __future__ import annotations

from repro.apps.datasets import make_dataset
from repro.apps.svrg import (
    SvrgConfig,
    SvrgTrainer,
    SvrgVariant,
    measure_svrg_timing,
)

OUTER_ITERATIONS = 8
DATASET = dict(num_samples=2048, num_features=256, classes=10)


def main() -> None:
    print("=== SVRG logistic regression with NDA summarization ===\n")
    print("[1] Measuring host and NDA streaming throughput on the simulator "
          "(concurrent access, bank partitioning, next-rank prediction)...")
    timing = measure_svrg_timing(channels=2, ranks_per_channel=2, cycles=5000)
    print(f"    host streaming bandwidth : {timing.host_stream_gbs:6.1f} GB/s")
    print(f"    NDA streaming bandwidth  : {timing.nda_stream_gbs:6.1f} GB/s "
          f"({timing.num_ndas} NDAs, concurrent with the host)\n")

    print("[2] Training on a synthetic 10-class dataset "
          f"({DATASET['num_samples']} x {DATASET['num_features']})...")
    dataset = make_dataset(**DATASET)
    trainer = SvrgTrainer(dataset, SvrgConfig(learning_rate=0.05,
                                              epoch_fraction=0.25,
                                              outer_iterations=OUTER_ITERATIONS),
                          timing)

    histories = {
        "host-only": trainer.train(SvrgVariant.HOST_ONLY),
        "accelerated (serialized)": trainer.train(SvrgVariant.ACCELERATED),
        "delayed update (parallel)": trainer.train(SvrgVariant.DELAYED_UPDATE),
    }

    target = max(h[-1].loss_gap for h in histories.values()) * 1.05
    print(f"\n[3] Time to reach a training-loss gap of {target:.4g}:")
    base_time = None
    for name, history in histories.items():
        t = SvrgTrainer.time_to_converge(history, target)
        if t is None:
            print(f"    {name:28s}: target not reached")
            continue
        if base_time is None:
            base_time = t
        print(f"    {name:28s}: {t * 1e3:8.3f} ms   "
              f"(speedup over host-only: {base_time / t:4.2f}x)")

    print("\n[4] Loss trajectory (gap to optimum) per outer iteration:")
    for name, history in histories.items():
        gaps = ", ".join(f"{p.loss_gap:.4f}" for p in history[:: max(1, len(history) // 6)])
        print(f"    {name:28s}: {gaps}")


if __name__ == "__main__":
    main()
